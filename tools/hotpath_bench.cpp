/// \file hotpath_bench.cpp
/// ftla-hotpath-bench: perf-regression harness for the level-3 hot path
/// and the blocked panel factorizations.
///
/// Times the packed register-tiled gemm and the blocked trsm/syrk
/// against their scalar *_seq oracles at decomposition-representative
/// shapes (square TMUs, tall/flat panel updates), plus the three panel
/// kernels (potrf2, the pivoted LU panel, the Householder QR panel) at
/// m x nb panel shapes against their *_seq oracles, cross-checking every
/// result against the oracle, races the fused in-kernel ABFT encode
/// (gemm_fused EncodeOnly) against the plain packed gemm and against the
/// separate gemm-then-encode_col sequence it replaces (at n=1024 the
/// in-kernel encode must cost < 10% over plain and strictly beat the
/// separate sequence), then runs the three FT decompositions
/// end-to-end, races the dataflow scheduler against the fork-join
/// oracle on multi-GPU end-to-end runs (same input, both schedulers,
/// factors must agree bit-exactly), and finally races the adaptive
/// load balancer against static block-cyclic ownership on a modeled
/// heterogeneous fleet (2:1 GPU skew, plus a mid-run slowdown injected
/// via FtOptions::on_iteration). The fleet race compares modeled
/// end-to-end time (compute_modeled + comm_modeled seconds — the
/// deterministic cost model, not wall-clock) and at the full size gates
/// a >= 15% adaptive improvement on every decomposition. A JSON report
/// with per-shape times and speedups is written to --out (default
/// BENCH_hotpath.json).
///
/// Exit status: 0 on success; 1 when any blocked kernel disagrees with
/// its oracle beyond tolerance, when a gated shape (smallest gate
/// dimension >= 512) is slower than its oracle, when an end-to-end
/// run does not finish Success, when a dataflow run diverges from
/// fork-join or — gated at n >= 512 on multi-core hosts, where overlap
/// can actually buy wall time — loses to it, or when a fleet race
/// diverges from the static oracle, never migrates, or (on the gated
/// skew scenario) improves modeled time by less than 15%; 2 on bad
/// usage.
///
/// Usage:
///   ftla-hotpath-bench [--repeats R] [--out FILE] [--smoke]
///                      [--fleet-only] [--quiet]
///
/// --smoke shrinks every shape so the whole run finishes in seconds
/// (used by the CTest/CI smoke job); the >= 512 perf gate and the fleet
/// >= 15% gate then have nothing meaningful to bind on (tiny fleets
/// cannot amortize the modeled comm bill), so smoke runs enforce
/// correctness — including that every fleet scenario actually migrates —
/// but no perf thresholds. --fleet-only skips the kernel sweep and the
/// scheduler race and runs just the heterogeneous-fleet section at full
/// size; CI uses it to bind the 15% gate cheaply (the fleet metric is
/// modeled, so it needs no quiet machine).

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "blas/level3.hpp"
#include "checksum/encode.hpp"
#include "common/timer.hpp"
#include "core/ft_driver.hpp"
#include "lapack/lapack.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"
#include "sim/system.hpp"

namespace {

using ftla::MatD;
using ftla::WallTimer;
using ftla::index_t;
using namespace ftla::blas;

struct CliOptions {
  int repeats = 3;
  std::string out = "BENCH_hotpath.json";
  bool smoke = false;
  bool quiet = false;
  /// Run only the heterogeneous-fleet race (CI uses this to bind the
  /// full-size >= 15% gate without paying for the wall-clock kernel
  /// sweep, which needs a quiet machine to be meaningful).
  bool fleet_only = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--repeats R] [--out FILE] [--smoke] [--fleet-only] [--quiet]\n";
  return 2;
}

/// max |x - y| over the matrix, relative to the oracle's max magnitude.
double rel_max_diff(const MatD& x, const MatD& y) {
  double diff = 0.0;
  double scale = 0.0;
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      diff = std::max(diff, std::abs(x(i, j) - y(i, j)));
      scale = std::max(scale, std::abs(y(i, j)));
    }
  }
  return scale > 0.0 ? diff / scale : diff;
}

/// Triangular matrices need a dominant diagonal so the trsm solves stay
/// well conditioned at every benched size.
MatD boosted_diag(index_t n, std::uint64_t seed) {
  MatD a = ftla::random_general(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

struct ShapeResult {
  std::string kernel;
  std::string label;
  index_t m = 0, n = 0, k = 0;
  double naive_seconds = 0.0;
  double fast_seconds = 0.0;
  double rel_diff = 0.0;
  double tol = 1e-12;  ///< per-shape rel_diff tolerance
  bool gated = false;  ///< participates in the >= 512 perf gate

  [[nodiscard]] double speedup() const {
    return fast_seconds > 0.0 ? naive_seconds / fast_seconds : 0.0;
  }

  void to_json(std::ostringstream& os) const {
    os << "{\"kernel\":\"" << kernel << "\",\"label\":\"" << label << "\",\"m\":" << m
       << ",\"n\":" << n << ",\"k\":" << k << ",\"naive_seconds\":" << naive_seconds
       << ",\"fast_seconds\":" << fast_seconds << ",\"speedup\":" << speedup()
       << ",\"rel_diff\":" << rel_diff << ",\"tol\":" << tol
       << ",\"gated\":" << (gated ? "true" : "false") << "}";
  }
};

/// Best-of-R wall time of `body` (one untimed warmup first).
template <typename F>
double time_best(int repeats, F&& body) {
  body();
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

constexpr double kTol = 1e-12;
// Panel factorizations amplify rounding through pivots/divisions/sqrt
// and the blocked variants reassociate every inner sum, so their
// blocked-vs-oracle agreement is held to a looser (still tight) bound.
constexpr double kPanelTol = 1e-10;

ShapeResult bench_gemm(const CliOptions& cli, const char* label, Trans ta, Trans tb,
                       index_t m, index_t n, index_t k) {
  const MatD a = ta == Trans::NoTrans ? ftla::random_general(m, k, 1)
                                      : ftla::random_general(k, m, 1);
  const MatD b = tb == Trans::NoTrans ? ftla::random_general(k, n, 2)
                                      : ftla::random_general(n, k, 2);
  const MatD c0 = ftla::random_general(m, n, 3);

  MatD oracle = c0;
  MatD fast = c0;
  gemm_seq(ta, tb, 1.0, a.view(), b.view(), 0.5, oracle.view());
  gemm(ta, tb, 1.0, a.view(), b.view(), 0.5, fast.view());

  ShapeResult res;
  res.kernel = "gemm";
  res.label = label;
  res.m = m;
  res.n = n;
  res.k = k;
  res.rel_diff = rel_max_diff(fast, oracle);
  res.gated = std::min({m, n, k}) >= 512;
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    gemm_seq(ta, tb, 1.0, a.view(), b.view(), 0.5, c.view());
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    gemm(ta, tb, 1.0, a.view(), b.view(), 0.5, c.view());
  });
  return res;
}

ShapeResult bench_trsm(const CliOptions& cli, const char* label, Side side, Uplo uplo,
                       Trans trans, Diag diag, index_t m, index_t n) {
  const index_t tri = side == Side::Left ? m : n;
  const MatD a = boosted_diag(tri, 4);
  const MatD b0 = ftla::random_general(m, n, 5);

  MatD oracle = b0;
  MatD fast = b0;
  trsm_seq(side, uplo, trans, diag, 1.0, a.view(), oracle.view());
  trsm(side, uplo, trans, diag, 1.0, a.view(), fast.view());

  ShapeResult res;
  res.kernel = "trsm";
  res.label = label;
  res.m = m;
  res.n = n;
  res.rel_diff = rel_max_diff(fast, oracle);
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD b = b0;
    trsm_seq(side, uplo, trans, diag, 1.0, a.view(), b.view());
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD b = b0;
    trsm(side, uplo, trans, diag, 1.0, a.view(), b.view());
  });
  return res;
}

ShapeResult bench_syrk(const CliOptions& cli, const char* label, Uplo uplo, Trans trans,
                       index_t n, index_t k) {
  const MatD a = trans == Trans::NoTrans ? ftla::random_general(n, k, 6)
                                         : ftla::random_general(k, n, 6);
  const MatD c0 = ftla::random_general(n, n, 7);

  MatD oracle = c0;
  MatD fast = c0;
  syrk_seq(uplo, trans, 1.0, a.view(), 0.5, oracle.view());
  syrk(uplo, trans, 1.0, a.view(), 0.5, fast.view());

  ShapeResult res;
  res.kernel = "syrk";
  res.label = label;
  res.n = n;
  res.k = k;
  res.rel_diff = rel_max_diff(fast, oracle);
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    syrk_seq(uplo, trans, 1.0, a.view(), 0.5, c.view());
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    syrk(uplo, trans, 1.0, a.view(), 0.5, c.view());
  });
  return res;
}

ShapeResult bench_potrf2(const CliOptions& cli, const char* label, index_t n) {
  const MatD a0 = ftla::random_spd(n, 8);

  MatD oracle = a0;
  MatD fast = a0;
  ftla::lapack::potrf2_seq(oracle.view());
  ftla::lapack::potrf2(fast.view());

  ShapeResult res;
  res.kernel = "potrf2";
  res.label = label;
  res.m = n;
  res.n = n;
  res.rel_diff = rel_max_diff(fast, oracle);
  res.tol = kPanelTol;
  res.gated = n >= 512;
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    ftla::lapack::potrf2_seq(a.view());
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    ftla::lapack::potrf2(a.view());
  });
  return res;
}

ShapeResult bench_getrf_panel(const CliOptions& cli, const char* label, index_t m,
                              index_t nb) {
  const MatD a0 = ftla::random_general(m, nb, 9);

  MatD oracle = a0;
  MatD fast = a0;
  std::vector<index_t> piv_oracle;
  std::vector<index_t> piv_fast;
  ftla::lapack::getrf2_seq(oracle.view(), piv_oracle);
  ftla::lapack::getrf2(fast.view(), piv_fast);

  ShapeResult res;
  res.kernel = "getrf-panel";
  res.label = label;
  res.m = m;
  res.n = nb;
  res.rel_diff = rel_max_diff(fast, oracle);
  // A diverging pivot sequence is a hard disagreement regardless of the
  // numeric entries.
  if (piv_fast != piv_oracle) res.rel_diff = 1.0;
  res.tol = kPanelTol;
  res.gated = m >= 512;
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    std::vector<index_t> piv;
    ftla::lapack::getrf2_seq(a.view(), piv);
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    std::vector<index_t> piv;
    ftla::lapack::getrf2(a.view(), piv);
  });
  return res;
}

ShapeResult bench_geqrf_panel(const CliOptions& cli, const char* label, index_t m,
                              index_t nb) {
  const MatD a0 = ftla::random_general(m, nb, 10);

  MatD oracle = a0;
  MatD fast = a0;
  std::vector<double> tau_oracle;
  std::vector<double> tau_fast;
  ftla::lapack::geqrf2_seq(oracle.view(), tau_oracle);
  ftla::lapack::geqrf2(fast.view(), tau_fast);

  ShapeResult res;
  res.kernel = "geqrf-panel";
  res.label = label;
  res.m = m;
  res.n = nb;
  res.rel_diff = rel_max_diff(fast, oracle);
  for (std::size_t j = 0; j < tau_oracle.size(); ++j) {
    res.rel_diff = std::max(res.rel_diff, std::abs(tau_fast[j] - tau_oracle[j]));
  }
  res.tol = kPanelTol;
  res.gated = m >= 512;
  res.naive_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    std::vector<double> tau;
    ftla::lapack::geqrf2_seq(a.view(), tau);
  });
  res.fast_seconds = time_best(cli.repeats, [&] {
    MatD a = a0;
    std::vector<double> tau;
    ftla::lapack::geqrf2(a.view(), tau);
  });
  return res;
}

/// Fused in-kernel ABFT race: the same update under the plain packed
/// gemm, under gemm_fused(EncodeOnly) — which forms the fresh column
/// checksums of C in the microkernel write-back — and as the separate
/// gemm-then-encode_col sequence the fused pipeline replaces. The fused
/// C must stay bit-identical to the plain packed result (the kernel
/// only *adds* checksum lanes), and at the gated size the in-kernel
/// encode must cost < 10% over the plain gemm while strictly beating
/// the separate sequence.
struct FusedAbftResult {
  std::string label;
  index_t m = 0, n = 0, k = 0;
  double plain_seconds = 0.0;
  double fused_seconds = 0.0;
  double separate_seconds = 0.0;
  double max_abs_diff = 0.0;  ///< fused C vs plain packed C (want 0)
  double cs_rel_diff = 0.0;   ///< fused checksums vs standalone encode_col
  bool gated = false;         ///< n >= 1024: overhead and separate gates bind

  /// Fraction of the plain gemm's time the in-kernel encode costs extra.
  [[nodiscard]] double overhead() const {
    return plain_seconds > 0.0 ? fused_seconds / plain_seconds - 1.0 : 0.0;
  }

  void to_json(std::ostringstream& os) const {
    os << "{\"label\":\"" << label << "\",\"m\":" << m << ",\"n\":" << n
       << ",\"k\":" << k << ",\"plain_seconds\":" << plain_seconds
       << ",\"fused_seconds\":" << fused_seconds
       << ",\"separate_seconds\":" << separate_seconds
       << ",\"overhead\":" << overhead()
       << ",\"max_abs_diff\":" << max_abs_diff
       << ",\"cs_rel_diff\":" << cs_rel_diff
       << ",\"gated\":" << (gated ? "true" : "false") << "}";
  }
};

FusedAbftResult bench_fused_abft(const CliOptions& cli, const char* label,
                                 index_t m, index_t n, index_t k) {
  const MatD a = ftla::random_general(m, k, 14);
  const MatD b = ftla::random_general(k, n, 15);
  const MatD c0 = ftla::random_general(m, n, 16);

  MatD plain = c0;
  gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0, plain.view());

  MatD fused = c0;
  MatD actual(2, n);
  GemmFtOut ft;
  ft.actual = actual.view();
  gemm_fused(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0,
             fused.view(), GemmFt::EncodeOnly, /*allow_threads=*/true, ft);

  FusedAbftResult res;
  res.label = label;
  res.m = m;
  res.n = n;
  res.k = k;
  res.gated = !cli.smoke && std::min({m, n, k}) >= 1024;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      res.max_abs_diff =
          std::max(res.max_abs_diff, std::abs(fused(i, j) - plain(i, j)));
    }
  }
  // The write-back checksums must agree with a standalone encode of the
  // finished tile (reassociated sums: relative, not bit-exact).
  MatD standalone(2, n);
  ftla::checksum::encode_col(plain.const_view(), standalone.view());
  double diff = 0.0;
  double scale = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < 2; ++i) {
      diff = std::max(diff, std::abs(actual(i, j) - standalone(i, j)));
      scale = std::max(scale, std::abs(standalone(i, j)));
    }
  }
  res.cs_rel_diff = scale > 0.0 ? diff / scale : diff;

  res.plain_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0, c.view());
  });
  res.fused_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    gemm_fused(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0,
               c.view(), GemmFt::EncodeOnly, true, ft);
  });
  res.separate_seconds = time_best(cli.repeats, [&] {
    MatD c = c0;
    gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0, c.view());
    ftla::checksum::encode_col(c.const_view(), standalone.view());
  });
  return res;
}

struct EndToEndResult {
  std::string decomp;
  index_t n = 0;
  double seconds = 0.0;
  bool ok = false;

  void to_json(std::ostringstream& os) const {
    os << "{\"decomp\":\"" << decomp << "\",\"n\":" << n << ",\"seconds\":" << seconds
       << ",\"ok\":" << (ok ? "true" : "false") << "}";
  }
};

EndToEndResult bench_end_to_end(const char* decomp, index_t n, index_t nb) {
  ftla::core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 1;

  EndToEndResult res;
  res.decomp = decomp;
  res.n = n;
  WallTimer t;
  ftla::core::FtOutput out;
  if (std::strcmp(decomp, "cholesky") == 0) {
    out = ftla::core::ft_cholesky(ftla::random_spd(n, 11).view(), opts);
  } else if (std::strcmp(decomp, "lu") == 0) {
    out = ftla::core::ft_lu(ftla::random_diag_dominant(n, 12).view(), opts);
  } else {
    out = ftla::core::ft_qr(ftla::random_general(n, n, 13).view(), opts);
  }
  res.seconds = t.seconds();
  res.ok = out.ok();
  return res;
}

/// End-to-end scheduler race: the same input factored under fork-join
/// and under the dataflow runtime (lookahead overlapping panel k+1 with
/// trailing update k). The two must agree bit-exactly; at gated sizes
/// the dataflow schedule must not lose to the barriered loop.
struct SchedulerCompareResult {
  std::string decomp;
  index_t n = 0, nb = 0;
  int ngpu = 0;
  index_t lookahead = 0;
  double forkjoin_seconds = 0.0;
  double dataflow_seconds = 0.0;
  double max_abs_diff = 0.0;  ///< dataflow vs fork-join factors (want 0)
  bool ok = false;            ///< both runs finished Success
  bool gated = false;         ///< n >= 512: dataflow must win or tie

  [[nodiscard]] double speedup() const {
    return dataflow_seconds > 0.0 ? forkjoin_seconds / dataflow_seconds : 0.0;
  }

  void to_json(std::ostringstream& os) const {
    os << "{\"decomp\":\"" << decomp << "\",\"n\":" << n << ",\"nb\":" << nb
       << ",\"ngpu\":" << ngpu << ",\"lookahead\":" << lookahead
       << ",\"forkjoin_seconds\":" << forkjoin_seconds
       << ",\"dataflow_seconds\":" << dataflow_seconds
       << ",\"speedup\":" << speedup() << ",\"max_abs_diff\":" << max_abs_diff
       << ",\"ok\":" << (ok ? "true" : "false")
       << ",\"gated\":" << (gated ? "true" : "false") << "}";
  }
};

SchedulerCompareResult bench_scheduler(const CliOptions& cli, const char* decomp,
                                       index_t n, index_t nb, int ngpu,
                                       index_t lookahead, bool gate) {
  MatD input;
  if (std::strcmp(decomp, "cholesky") == 0) {
    input = ftla::random_spd(n, 21);
  } else if (std::strcmp(decomp, "lu") == 0) {
    input = ftla::random_diag_dominant(n, 22);
  } else {
    input = ftla::random_general(n, n, 23);
  }

  ftla::core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = ngpu;
  opts.checksum = ftla::core::ChecksumKind::Full;
  opts.scheme = ftla::core::SchemeKind::NewScheme;
  opts.lookahead = lookahead;

  auto run = [&](ftla::core::SchedulerKind sched) {
    ftla::core::FtOptions o = opts;
    o.scheduler = sched;
    if (std::strcmp(decomp, "cholesky") == 0)
      return ftla::core::ft_cholesky(input.const_view(), o);
    if (std::strcmp(decomp, "lu") == 0)
      return ftla::core::ft_lu(input.const_view(), o);
    return ftla::core::ft_qr(input.const_view(), o);
  };

  const ftla::core::FtOutput fj = run(ftla::core::SchedulerKind::ForkJoin);
  const ftla::core::FtOutput df = run(ftla::core::SchedulerKind::Dataflow);

  SchedulerCompareResult res;
  res.decomp = decomp;
  res.n = n;
  res.nb = nb;
  res.ngpu = ngpu;
  res.lookahead = lookahead;
  res.ok = fj.ok() && df.ok();
  // Lookahead converts wall time into overlap only when there are spare
  // cores for the host panel to run on while the GPU lanes compute; on a
  // single-core host the schedulers time-slice the same CPU and the race
  // is pure scheduling overhead, so the perf gate stays dormant there
  // (the deterministic critical-path gate in test_modelcheck carries the
  // schedule-quality guarantee instead).
  res.gated = gate && !cli.smoke && n >= 512 &&
              std::thread::hardware_concurrency() > 1;
  double diff = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      diff = std::max(diff, std::abs(df.factors(i, j) - fj.factors(i, j)));
    }
  }
  for (std::size_t i = 0; i < std::min(df.tau.size(), fj.tau.size()); ++i) {
    diff = std::max(diff, std::abs(df.tau[i] - fj.tau[i]));
  }
  if (df.tau.size() != fj.tau.size()) diff = 1.0;
  res.max_abs_diff = diff;
  res.forkjoin_seconds = time_best(cli.repeats, [&] {
    (void)run(ftla::core::SchedulerKind::ForkJoin);
  });
  res.dataflow_seconds = time_best(cli.repeats, [&] {
    (void)run(ftla::core::SchedulerKind::Dataflow);
  });
  return res;
}

/// Heterogeneous-fleet race: the same input factored with static
/// block-cyclic ownership and with the adaptive load balancer, compared
/// on modeled end-to-end time (compute_modeled + comm_modeled seconds —
/// the deterministic flops/PCIe cost model, never wall-clock, so one run
/// per configuration suffices and the gates cannot flake). Fault-free
/// adaptive factors must match the static oracle bit-exactly — migration
/// re-homes columns, it never reassociates arithmetic — and the adaptive
/// run must have actually migrated for the comparison to mean anything.
struct FleetCompareResult {
  std::string decomp;
  std::string scenario;  ///< "skew-2to1" or "midrun-slowdown"
  index_t n = 0, nb = 0;
  int ngpu = 0;
  double static_modeled_seconds = 0.0;
  double adaptive_modeled_seconds = 0.0;
  double max_abs_diff = 0.0;  ///< adaptive vs static factors (want 0)
  std::uint64_t tiles_migrated = 0;
  bool ok = false;    ///< both runs finished Success
  bool gated = false; ///< carries the >= 15% modeled-improvement gate

  /// Fraction of the static modeled time the balancer saved.
  [[nodiscard]] double gain() const {
    return static_modeled_seconds > 0.0
               ? 1.0 - adaptive_modeled_seconds / static_modeled_seconds
               : 0.0;
  }

  void to_json(std::ostringstream& os) const {
    os << "{\"decomp\":\"" << decomp << "\",\"scenario\":\"" << scenario
       << "\",\"n\":" << n << ",\"nb\":" << nb << ",\"ngpu\":" << ngpu
       << ",\"static_modeled_seconds\":" << static_modeled_seconds
       << ",\"adaptive_modeled_seconds\":" << adaptive_modeled_seconds
       << ",\"gain\":" << gain() << ",\"max_abs_diff\":" << max_abs_diff
       << ",\"tiles_migrated\":" << tiles_migrated
       << ",\"ok\":" << (ok ? "true" : "false")
       << ",\"gated\":" << (gated ? "true" : "false") << "}";
  }
};

/// `slow_at < 0` runs the pure skew scenario (`scales` applied at start);
/// otherwise GPU 1 drops to `slow_scale` at the end of iteration
/// `slow_at`, exercising the estimator's mid-run re-convergence. Both
/// runs share the injection so the comparison stays apples-to-apples.
FleetCompareResult bench_fleet(const char* decomp, const char* scenario,
                               index_t n, index_t nb,
                               std::vector<double> scales, index_t slow_at,
                               double slow_scale, bool gate) {
  MatD input;
  if (std::strcmp(decomp, "cholesky") == 0) {
    input = ftla::random_spd(n, 31);
  } else if (std::strcmp(decomp, "lu") == 0) {
    input = ftla::random_diag_dominant(n, 32);
  } else {
    input = ftla::random_general(n, n, 33);
  }

  ftla::sim::HeterogeneousSystem sys(2);
  ftla::core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 2;
  opts.checksum = ftla::core::ChecksumKind::Full;
  opts.scheme = ftla::core::SchemeKind::NewScheme;
  opts.gpu_time_scale = std::move(scales);
  opts.system = &sys;
  if (slow_at >= 0) {
    opts.on_iteration = [&sys, slow_at, slow_scale](index_t k) {
      if (k == slow_at) sys.gpu(1).set_time_scale(slow_scale);
    };
  }

  auto run = [&](bool adaptive) {
    ftla::core::FtOptions o = opts;
    o.adaptive_balance = adaptive;
    if (std::strcmp(decomp, "cholesky") == 0)
      return ftla::core::ft_cholesky(input.const_view(), o);
    if (std::strcmp(decomp, "lu") == 0)
      return ftla::core::ft_lu(input.const_view(), o);
    return ftla::core::ft_qr(input.const_view(), o);
  };

  const ftla::core::FtOutput st = run(false);
  const ftla::core::FtOutput ad = run(true);

  FleetCompareResult res;
  res.decomp = decomp;
  res.scenario = scenario;
  res.n = n;
  res.nb = nb;
  res.ngpu = 2;
  res.static_modeled_seconds =
      st.stats.compute_modeled_seconds + st.stats.comm_modeled_seconds;
  res.adaptive_modeled_seconds =
      ad.stats.compute_modeled_seconds + ad.stats.comm_modeled_seconds;
  res.tiles_migrated = ad.stats.tiles_migrated;
  res.ok = st.ok() && ad.ok();
  res.gated = gate;
  double diff = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      diff = std::max(diff, std::abs(ad.factors(i, j) - st.factors(i, j)));
    }
  }
  for (std::size_t i = 0; i < std::min(ad.tau.size(), st.tau.size()); ++i) {
    diff = std::max(diff, std::abs(ad.tau[i] - st.tau[i]));
  }
  if (ad.tau.size() != st.tau.size()) diff = 1.0;
  res.max_abs_diff = diff;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats") {
      if (i + 1 >= argc) return usage(argv[0]);
      cli.repeats = std::atoi(argv[++i]);
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage(argv[0]);
      cli.out = argv[++i];
    } else if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--fleet-only") {
      cli.fleet_only = true;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.repeats < 1) return usage(argv[0]);

  // Decomposition-representative shapes: square TMU-style products at
  // rising sizes (1024 carries the acceptance gate), the tall x flat
  // trailing-matrix update of an nb=128 panel at n=1024, and the
  // transposed product QR's TMU performs. Smoke mode shrinks everything
  // past the packing and threading thresholds but keeps every code path.
  const index_t s = cli.smoke ? 96 : 0;
  std::vector<ShapeResult> shapes;
  if (cli.fleet_only) {
    // Kernel, end-to-end and scheduler sections skipped: only the
    // heterogeneous-fleet race below runs.
  } else if (cli.smoke) {
    shapes.push_back(bench_gemm(cli, "square-NN", Trans::NoTrans, Trans::NoTrans, s, s, s));
    shapes.push_back(
        bench_gemm(cli, "panel-update-NN", Trans::NoTrans, Trans::NoTrans, s, s, 32));
    shapes.push_back(bench_gemm(cli, "square-TN", Trans::Trans, Trans::NoTrans, s, s, s));
    shapes.push_back(bench_trsm(cli, "lu-panel", Side::Left, Uplo::Lower, Trans::NoTrans,
                                Diag::Unit, 32, s));
    shapes.push_back(bench_trsm(cli, "cholesky-panel", Side::Right, Uplo::Lower, Trans::Trans,
                                Diag::NonUnit, s, 32));
    shapes.push_back(bench_syrk(cli, "cholesky-update", Uplo::Lower, Trans::NoTrans, s, 32));
    shapes.push_back(bench_potrf2(cli, "diag-block", s));
    shapes.push_back(bench_getrf_panel(cli, "lu-panel", s, 32));
    shapes.push_back(bench_geqrf_panel(cli, "qr-panel", s, 32));
  } else {
    shapes.push_back(
        bench_gemm(cli, "square-NN", Trans::NoTrans, Trans::NoTrans, 256, 256, 256));
    shapes.push_back(
        bench_gemm(cli, "square-NN", Trans::NoTrans, Trans::NoTrans, 512, 512, 512));
    shapes.push_back(
        bench_gemm(cli, "square-NN", Trans::NoTrans, Trans::NoTrans, 1024, 1024, 1024));
    shapes.push_back(bench_gemm(cli, "panel-update-NN", Trans::NoTrans, Trans::NoTrans, 896,
                                896, 128));
    shapes.push_back(
        bench_gemm(cli, "square-TN", Trans::Trans, Trans::NoTrans, 512, 512, 512));
    shapes.push_back(bench_trsm(cli, "lu-panel", Side::Left, Uplo::Lower, Trans::NoTrans,
                                Diag::Unit, 128, 896));
    shapes.push_back(bench_trsm(cli, "cholesky-panel", Side::Right, Uplo::Lower, Trans::Trans,
                                Diag::NonUnit, 896, 128));
    shapes.push_back(bench_trsm(cli, "square-left", Side::Left, Uplo::Lower, Trans::NoTrans,
                                Diag::NonUnit, 1024, 1024));
    shapes.push_back(
        bench_syrk(cli, "cholesky-update", Uplo::Lower, Trans::NoTrans, 896, 128));
    shapes.push_back(bench_syrk(cli, "square", Uplo::Lower, Trans::NoTrans, 1024, 256));
    // Panel-factorization shapes: nb-square Cholesky diagonal blocks and
    // tall-skinny m x nb LU/QR panels for nb in {64, 128}; m >= 512
    // entries carry the perf gate.
    shapes.push_back(bench_potrf2(cli, "diag-block", 128));
    shapes.push_back(bench_potrf2(cli, "diag-block", 512));
    shapes.push_back(bench_getrf_panel(cli, "lu-panel", 512, 64));
    shapes.push_back(bench_getrf_panel(cli, "lu-panel", 1024, 128));
    shapes.push_back(bench_geqrf_panel(cli, "qr-panel", 512, 64));
    shapes.push_back(bench_geqrf_panel(cli, "qr-panel", 1024, 128));
  }

  // Fused-ABFT shapes: the acceptance row is the n=1024 square TMU-style
  // update, where the in-kernel encode must cost < 10% over the plain
  // packed gemm and strictly beat gemm-then-encode_col. The smaller rows
  // (and smoke) report the trajectory without binding the perf gates.
  std::vector<FusedAbftResult> fused_rows;
  if (!cli.fleet_only) {
    if (cli.smoke) {
      fused_rows.push_back(bench_fused_abft(cli, "square-NN", s, s, s));
    } else {
      fused_rows.push_back(bench_fused_abft(cli, "square-NN", 512, 512, 512));
      fused_rows.push_back(bench_fused_abft(cli, "square-NN", 1024, 1024, 1024));
      fused_rows.push_back(
          bench_fused_abft(cli, "panel-update-NN", 896, 896, 128));
    }
  }

  const index_t e2e_n = cli.smoke ? 128 : 1024;
  const index_t e2e_nb = cli.smoke ? 32 : 64;
  std::vector<EndToEndResult> runs;
  // Dataflow vs fork-join on multi-GPU end-to-end runs (NewScheme/Full).
  // Every shape gates bit-exact agreement; the LU row — the acceptance
  // shape, whose host panel is the deepest of the three — additionally
  // carries the >= 1.0 wall-clock speedup gate at n=1024 (on multi-core
  // hosts). Cholesky/QR speedups are reported for the trajectory only.
  std::vector<SchedulerCompareResult> sched;
  if (!cli.fleet_only) {
    runs.push_back(bench_end_to_end("cholesky", e2e_n, e2e_nb));
    runs.push_back(bench_end_to_end("lu", e2e_n, e2e_nb));
    runs.push_back(bench_end_to_end("qr", e2e_n, e2e_nb));
    sched.push_back(bench_scheduler(cli, "cholesky", e2e_n, e2e_nb, 2, 2, false));
    sched.push_back(bench_scheduler(cli, "lu", e2e_n, e2e_nb, 2, 2, true));
    sched.push_back(bench_scheduler(cli, "qr", e2e_n, e2e_nb, 2, 2, false));
  }

  // Heterogeneous-fleet race: static vs adaptive ownership on a 2-GPU
  // fleet with GPU 1 modeled 2x slower. At the full size all three
  // decompositions carry the >= 15% modeled-improvement acceptance gate;
  // n=2048/nb=128 (16 block-columns) is the smallest shape where the
  // compute savings clear the PCIe cost-model dilution — migration
  // traffic plus the fixed scatter/broadcast/gather bill — with margin
  // on every algorithm. Smoke shrinks to 16 tiny columns, which still
  // exercises migration on every row (enforced) but cannot amortize the
  // comm bill, so the % gate stays dormant there like the other smoke
  // gates. The fourth row starts homogeneous and slows GPU 1 to 3x a
  // quarter of the way in — the estimator has to notice and re-partition
  // mid-run — and is reported ungated since the reachable gain depends
  // on when the fault lands.
  const index_t fleet_n = cli.smoke ? 256 : 2048;
  const index_t fleet_nb = cli.smoke ? 16 : 128;
  std::vector<FleetCompareResult> fleet;
  const bool fleet_gate = !cli.smoke;
  fleet.push_back(bench_fleet("cholesky", "skew-2to1", fleet_n, fleet_nb,
                              {1.0, 2.0}, -1, 0.0, fleet_gate));
  fleet.push_back(bench_fleet("lu", "skew-2to1", fleet_n, fleet_nb, {1.0, 2.0},
                              -1, 0.0, fleet_gate));
  fleet.push_back(bench_fleet("qr", "skew-2to1", fleet_n, fleet_nb, {1.0, 2.0},
                              -1, 0.0, fleet_gate));
  fleet.push_back(bench_fleet("cholesky", "midrun-slowdown", fleet_n, fleet_nb,
                              {1.0, 1.0}, fleet_n / fleet_nb / 4, 3.0, false));

  int failures = 0;
  for (const auto& r : shapes) {
    if (r.rel_diff > r.tol) {
      std::cerr << "FAIL: " << r.kernel << " " << r.label << " (m=" << r.m << ",n=" << r.n
                << ",k=" << r.k << ") disagrees with oracle: rel_diff=" << r.rel_diff
                << "\n";
      ++failures;
    }
    if (r.gated && r.speedup() < 1.0) {
      std::cerr << "FAIL: " << r.kernel << " " << r.label << " (m=" << r.m << ",n=" << r.n
                << ",k=" << r.k << ") regressed vs naive: speedup=" << r.speedup() << "\n";
      ++failures;
    }
  }
  for (const auto& r : fused_rows) {
    if (r.max_abs_diff != 0.0) {
      std::cerr << "FAIL: fused-abft " << r.label << " n=" << r.n
                << " fused C diverges from the plain packed gemm: "
                << "max_abs_diff=" << r.max_abs_diff << "\n";
      ++failures;
    }
    if (r.cs_rel_diff > 1e-10) {
      std::cerr << "FAIL: fused-abft " << r.label << " n=" << r.n
                << " write-back checksums disagree with encode_col: "
                << "cs_rel_diff=" << r.cs_rel_diff << "\n";
      ++failures;
    }
    if (r.gated && r.overhead() > 0.10) {
      std::cerr << "FAIL: fused-abft " << r.label << " n=" << r.n
                << " in-kernel encode overhead " << r.overhead() * 100.0
                << "% exceeds the 10% gate\n";
      ++failures;
    }
    if (r.gated && r.fused_seconds >= r.separate_seconds) {
      std::cerr << "FAIL: fused-abft " << r.label << " n=" << r.n
                << " fused encode lost to separate gemm+encode: "
                << r.fused_seconds * 1e3 << " ms vs "
                << r.separate_seconds * 1e3 << " ms\n";
      ++failures;
    }
  }
  for (const auto& r : runs) {
    if (!r.ok) {
      std::cerr << "FAIL: end-to-end ft_" << r.decomp << " n=" << r.n
                << " did not finish Success\n";
      ++failures;
    }
  }
  for (const auto& r : sched) {
    if (!r.ok) {
      std::cerr << "FAIL: scheduler-compare ft_" << r.decomp << " n=" << r.n
                << " did not finish Success under both schedulers\n";
      ++failures;
    }
    if (r.max_abs_diff != 0.0) {
      std::cerr << "FAIL: scheduler-compare ft_" << r.decomp << " n=" << r.n
                << " dataflow diverges from fork-join: max_abs_diff="
                << r.max_abs_diff << "\n";
      ++failures;
    }
    if (r.gated && r.speedup() < 1.0) {
      std::cerr << "FAIL: scheduler-compare ft_" << r.decomp << " n=" << r.n
                << " dataflow lost to fork-join: speedup=" << r.speedup()
                << "\n";
      ++failures;
    }
  }
  for (const auto& r : fleet) {
    if (!r.ok) {
      std::cerr << "FAIL: fleet ft_" << r.decomp << " " << r.scenario
                << " n=" << r.n << " did not finish Success under both "
                << "ownership modes\n";
      ++failures;
    }
    if (r.max_abs_diff != 0.0) {
      std::cerr << "FAIL: fleet ft_" << r.decomp << " " << r.scenario
                << " n=" << r.n << " adaptive diverges from the static "
                << "oracle: max_abs_diff=" << r.max_abs_diff << "\n";
      ++failures;
    }
    if (r.tiles_migrated == 0) {
      std::cerr << "FAIL: fleet ft_" << r.decomp << " " << r.scenario
                << " n=" << r.n << " adaptive run never migrated — the "
                << "comparison is vacuous\n";
      ++failures;
    }
    if (r.gated && r.gain() < 0.15) {
      std::cerr << "FAIL: fleet ft_" << r.decomp << " " << r.scenario
                << " n=" << r.n << " modeled improvement " << r.gain() * 100.0
                << "% is below the 15% gate\n";
      ++failures;
    }
  }

  std::ostringstream json;
  // Schema note: `fused_abft` rows report the in-kernel checksum-encode
  // race (plain packed gemm vs gemm_fused(EncodeOnly) vs separate
  // gemm-then-encode_col); `overhead` is fused/plain - 1 and gated rows
  // enforce overhead <= 0.10 and fused < separate.
  json << "{\"config\":{\"repeats\":" << cli.repeats
       << ",\"smoke\":" << (cli.smoke ? "true" : "false")
       << ",\"fused_abft_schema\":"
          "\"plain vs in-kernel encode vs separate encode; "
          "gated: overhead<=0.10 && fused<separate\"},\"shapes\":[";
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (i) json << ",";
    shapes[i].to_json(json);
  }
  json << "],\"fused_abft\":[";
  for (std::size_t i = 0; i < fused_rows.size(); ++i) {
    if (i) json << ",";
    fused_rows[i].to_json(json);
  }
  json << "],\"end_to_end\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) json << ",";
    runs[i].to_json(json);
  }
  json << "],\"scheduler_compare\":[";
  for (std::size_t i = 0; i < sched.size(); ++i) {
    if (i) json << ",";
    sched[i].to_json(json);
  }
  json << "],\"heterogeneous_fleet\":[";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i) json << ",";
    fleet[i].to_json(json);
  }
  json << "]}";

  std::ofstream out(cli.out);
  if (!out) {
    std::cerr << "cannot write " << cli.out << "\n";
    return 1;
  }
  out << json.str() << "\n";
  out.close();

  if (!cli.quiet) {
    for (const auto& r : shapes) {
      std::printf("%-5s %-16s m=%-5lld n=%-5lld k=%-5lld  naive %8.2f ms  fast %8.2f ms"
                  "  speedup %5.2fx%s\n",
                  r.kernel.c_str(), r.label.c_str(), static_cast<long long>(r.m),
                  static_cast<long long>(r.n), static_cast<long long>(r.k),
                  r.naive_seconds * 1e3, r.fast_seconds * 1e3, r.speedup(),
                  r.gated ? "  [gated]" : "");
    }
    for (const auto& r : fused_rows) {
      std::printf("fused %-16s m=%-5lld n=%-5lld k=%-5lld  plain %8.2f ms"
                  "  fused %8.2f ms  separate %8.2f ms  overhead %5.1f%%%s\n",
                  r.label.c_str(), static_cast<long long>(r.m),
                  static_cast<long long>(r.n), static_cast<long long>(r.k),
                  r.plain_seconds * 1e3, r.fused_seconds * 1e3,
                  r.separate_seconds * 1e3, r.overhead() * 100.0,
                  r.gated ? "  [gated]" : "");
    }
    for (const auto& r : runs) {
      std::printf("ft_%-9s n=%-5lld %8.2f ms  %s\n", r.decomp.c_str(),
                  static_cast<long long>(r.n), r.seconds * 1e3, r.ok ? "ok" : "FAILED");
    }
    for (const auto& r : sched) {
      std::printf("ft_%-9s n=%-5lld %dgpu la=%lld  fork-join %8.2f ms  dataflow %8.2f ms"
                  "  speedup %5.2fx  diff %g%s%s\n",
                  r.decomp.c_str(), static_cast<long long>(r.n), r.ngpu,
                  static_cast<long long>(r.lookahead), r.forkjoin_seconds * 1e3,
                  r.dataflow_seconds * 1e3, r.speedup(), r.max_abs_diff,
                  r.gated ? "  [gated]" : "", r.ok ? "" : "  FAILED");
    }
    for (const auto& r : fleet) {
      std::printf("fleet ft_%-9s %-16s n=%-5lld  static %8.2f ms  adaptive %8.2f ms"
                  "  gain %5.1f%%  moved %llu  diff %g%s%s\n",
                  r.decomp.c_str(), r.scenario.c_str(), static_cast<long long>(r.n),
                  r.static_modeled_seconds * 1e3, r.adaptive_modeled_seconds * 1e3,
                  r.gain() * 100.0, static_cast<unsigned long long>(r.tiles_migrated),
                  r.max_abs_diff, r.gated ? "  [gated]" : "",
                  r.ok ? "" : "  FAILED");
    }
    std::printf("report: %s\n", cli.out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

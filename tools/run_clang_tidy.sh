#!/usr/bin/env bash
# Runs clang-tidy over the project sources using the .clang-tidy at the
# repo root and a compile_commands.json.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [files...]
#
#   build-dir  directory containing compile_commands.json (default:
#              build; configured automatically when missing)
#   files...   restrict the run to these sources (default: every first-
#              party translation unit in the compilation database).
#              CI passes the changed files of a PR.
#
# The default file list is derived from compile_commands.json rather
# than a directory glob, so new translation units (src/analysis/hb*,
# src/trace sync capture, new tools) are picked up the moment they are
# added to a CMakeLists — there is no hand-maintained list to forget.
# Warnings are promoted to errors: a new file that introduces a tidy
# finding fails the run.
#
# Exits 0 with a notice when clang-tidy is not installed, so the script
# is safe to call from environments that only carry gcc.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found; skipping (install clang-tidy or set CLANG_TIDY)" >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: generating compile_commands.json in $BUILD_DIR" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# First-party translation units the compilation database knows about,
# repo-relative and deduplicated. Third-party and generated code (gtest,
# anything outside src/ and tools/) is excluded.
mapfile -t DB_FILES < <(
  sed -n 's/^[[:space:]]*"file":[[:space:]]*"\(.*\)".*$/\1/p' \
      "$BUILD_DIR/compile_commands.json" |
    sed "s|^$ROOT/||" |
    grep -E '^(src|tools)/.*\.cpp$' |
    sort -u
)

if [ $# -gt 0 ]; then
  FILES=("$@")
else
  FILES=("${DB_FILES[@]}")
fi

# Keep only translation units the compilation database knows about
# (changed-file lists from CI may include headers or deleted files).
KNOWN=()
for f in "${FILES[@]}"; do
  f="${f#./}"
  case "$f" in
    *.cpp) ;;
    *) continue ;;
  esac
  [ -f "$f" ] || continue
  for db in "${DB_FILES[@]}"; do
    if [ "$f" = "$db" ]; then
      KNOWN+=("$f")
      break
    fi
  done
done

if [ ${#KNOWN[@]} -eq 0 ]; then
  echo "run_clang_tidy: no translation units to check" >&2
  exit 0
fi

echo "run_clang_tidy: checking ${#KNOWN[@]} file(s)" >&2
"$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${KNOWN[@]}"

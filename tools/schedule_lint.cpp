/// \file schedule_lint.cpp
/// ftla-schedule-lint: proves the checking schemes against the MUD model.
///
/// Dry-runs every decomposition x scheme x device-count combination with
/// the schedule recorder attached, replays each trace through the
/// coverage analyzer (src/analysis), and emits a JSON violation report.
///
/// Exit status: 0 when every case matches its expected protection
/// profile (legacy schemes must exhibit their documented PCIe gaps, the
/// new scheme must be clean); 1 on any unexpected finding, missing
/// expected finding, or failed run; 2 on bad usage.
///
/// Usage:
///   ftla-schedule-lint [--n N] [--nb NB] [--ngpus 1,2,4]
///                      [--algo cholesky|lu|qr] [--scheme prior|post|new]
///                      [--out report.json] [--quiet]

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "common/error.hpp"

namespace {

using ftla::analysis::LintCase;
using ftla::analysis::LintOutcome;

struct CliOptions {
  ftla::index_t n = 192;
  ftla::index_t nb = 32;
  std::vector<int> ngpus = {1, 2, 4};
  std::string algo;    // empty = all
  std::string scheme;  // empty = all
  std::string out;     // empty = stdout only
  bool quiet = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--n N] [--nb NB] [--ngpus LIST] [--algo A] [--scheme S]"
               " [--out FILE] [--quiet]\n";
  return 2;
}

bool parse_ngpus(const std::string& s, std::vector<int>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int g = std::atoi(tok.c_str());
    if (g < 1) return false;
    out->push_back(g);
  }
  return !out->empty();
}

const char* scheme_label(ftla::core::SchemeKind s) {
  return ftla::core::to_string(s);
}

bool scheme_matches(ftla::core::SchemeKind s, const std::string& filter) {
  if (filter.empty()) return true;
  const std::string name = scheme_label(s);
  return name == filter ||
         (filter == "prior" && s == ftla::core::SchemeKind::PriorOp) ||
         (filter == "post" && s == ftla::core::SchemeKind::PostOp) ||
         (filter == "new" && s == ftla::core::SchemeKind::NewScheme);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.n = std::atol(v);
    } else if (arg == "--nb") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.nb = std::atol(v);
    } else if (arg == "--ngpus") {
      const char* v = next();
      if (!v || !parse_ngpus(v, &cli.ngpus)) return usage(argv[0]);
    } else if (arg == "--algo") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.algo = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.scheme = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.out = v;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<LintOutcome> outcomes;
  try {
    for (const LintCase& c :
         ftla::analysis::default_matrix(cli.n, cli.nb, cli.ngpus)) {
      if (!cli.algo.empty() && c.algorithm != cli.algo) continue;
      if (!scheme_matches(c.scheme, cli.scheme)) continue;
      LintOutcome o = ftla::analysis::lint_case(c);
      if (!cli.quiet) {
        std::cerr << (o.pass ? "  ok  " : " FAIL ") << c.algorithm << " / "
                  << scheme_label(c.scheme) << " / " << c.ngpu
                  << " gpu: " << o.report.findings.size() << " finding(s), "
                  << o.report.events << " events\n";
      }
      outcomes.push_back(std::move(o));
    }
  } catch (const ftla::FtlaError& e) {
    std::cerr << "ftla-schedule-lint: configuration error: " << e.what()
              << '\n';
    return 2;
  }

  if (outcomes.empty()) {
    std::cerr << "ftla-schedule-lint: no cases matched the filters\n";
    return 2;
  }

  if (!cli.out.empty()) {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << "ftla-schedule-lint: cannot write " << cli.out << '\n';
      return 2;
    }
    ftla::analysis::write_report(outcomes, f);
  } else {
    ftla::analysis::write_report(outcomes, std::cout);
  }

  return ftla::analysis::all_pass(outcomes) ? 0 : 1;
}

/// \file schedule_lint.cpp
/// ftla-schedule-lint: proves the checking schemes against the MUD model.
///
/// Dry-runs every decomposition x scheme x device-count combination with
/// the schedule recorder attached, replays each trace through the
/// coverage analyzer (src/analysis), and emits a JSON violation report.
///
/// Exit status: 0 when every case matches its expected protection
/// profile (legacy schemes must exhibit their documented PCIe gaps, the
/// new scheme must be clean); 1 on any unexpected finding, missing
/// expected finding, or failed run; 2 on bad usage.
///
/// With --hb the tool records the same matrix with sync capture enabled
/// and runs the happens-before analyzer instead: every case must be
/// race-free and well-synchronized on top of its coverage profile, and a
/// seeded mutation corpus (dropped sync edges, dropped verifications,
/// reordered transfers) must be detected 100%, with the violating event
/// pairs named in the report. Exit 1 if any case fails or any mutation
/// escapes.
///
/// With --migration the matrix is extended by the adaptive-balance cases
/// (NewScheme, 2 GPUs, 2:1 modeled skew): every such trace carries
/// Migrate transfers and AfterMigrate verifies, and must still prove
/// clean — the coverage guarantee extends across re-partitioning.
///
/// With --fused-abft every case records with FtOptions::fused_abft on:
/// trailing-update GEMMs verify their own output tiles in-kernel, so the
/// traces carry tile-granular FusedTmu verify events. The same
/// protection profiles must hold — fused verifies are extra coverage,
/// never a new gap.
///
/// Usage:
///   ftla-schedule-lint [--hb] [--migration] [--fused-abft] [--n N]
///                      [--nb NB]
///                      [--ngpus 1,2,4] [--algo cholesky|lu|qr]
///                      [--scheme prior|post|new] [--out report.json]
///                      [--quiet]

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/hb_lint.hpp"
#include "analysis/lint.hpp"
#include "common/error.hpp"

namespace {

using ftla::analysis::LintCase;
using ftla::analysis::LintOutcome;

struct CliOptions {
  ftla::index_t n = 192;
  ftla::index_t nb = 32;
  std::vector<int> ngpus = {1, 2, 4};
  std::string algo;    // empty = all
  std::string scheme;  // empty = all
  std::string out;     // empty = stdout only
  bool quiet = false;
  bool hb = false;
  bool migration = false;
  bool fused_abft = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--hb] [--migration] [--fused-abft] [--n N] [--nb NB]"
               " [--ngpus LIST]"
               " [--algo A] [--scheme S] [--out FILE] [--quiet]\n";
  return 2;
}

/// The full matrix for one invocation: the static block-cyclic cases,
/// plus (with --migration) the adaptive skewed-fleet cases.
std::vector<LintCase> build_matrix(const CliOptions& cli) {
  std::vector<LintCase> matrix =
      ftla::analysis::default_matrix(cli.n, cli.nb, cli.ngpus);
  if (cli.migration) {
    for (LintCase& c : ftla::analysis::migration_cases(cli.n, cli.nb)) {
      matrix.push_back(std::move(c));
    }
  }
  if (cli.fused_abft) {
    for (LintCase& c : matrix) c.fused_abft = true;
  }
  return matrix;
}

bool parse_ngpus(const std::string& s, std::vector<int>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int g = std::atoi(tok.c_str());
    if (g < 1) return false;
    out->push_back(g);
  }
  return !out->empty();
}

const char* scheme_label(ftla::core::SchemeKind s) {
  return ftla::core::to_string(s);
}

bool scheme_matches(ftla::core::SchemeKind s, const std::string& filter) {
  if (filter.empty()) return true;
  const std::string name = scheme_label(s);
  return name == filter ||
         (filter == "prior" && s == ftla::core::SchemeKind::PriorOp) ||
         (filter == "post" && s == ftla::core::SchemeKind::PostOp) ||
         (filter == "new" && s == ftla::core::SchemeKind::NewScheme);
}

/// The --hb code path is fully separate from the legacy one, which stays
/// byte-for-byte unchanged (same cases, same analyzer, same JSON).
int run_hb_mode(const CliOptions& cli, const char* argv0) {
  std::vector<LintCase> matrix;
  for (const LintCase& c : build_matrix(cli)) {
    if (!cli.algo.empty() && c.algorithm != cli.algo) continue;
    if (!scheme_matches(c.scheme, cli.scheme)) continue;
    matrix.push_back(c);
  }
  if (matrix.empty()) {
    std::cerr << argv0 << ": no cases matched the filters\n";
    return 2;
  }

  ftla::analysis::HbLintReport report;
  try {
    report = ftla::analysis::run_hb_lint(matrix);
  } catch (const ftla::FtlaError& e) {
    std::cerr << argv0 << ": configuration error: " << e.what() << '\n';
    return 2;
  }

  if (!cli.quiet) {
    for (const ftla::analysis::HbLintOutcome& o : report.cases) {
      std::cerr << (o.pass ? "  ok  " : " FAIL ") << o.config.algorithm
                << " / " << scheme_label(o.config.scheme) << " / "
                << o.config.ngpu << " gpu: " << o.report.sync_findings.size()
                << " sync finding(s), " << o.report.coverage_findings.size()
                << " coverage finding(s), " << o.report.sync_edges
                << " sync edges\n";
    }
    std::size_t detected = 0;
    for (const ftla::analysis::MutationOutcome& m : report.mutations) {
      if (m.detected) ++detected;
      if (!m.detected) {
        std::cerr << " MISS " << m.mutation.name << " on " << m.base.algorithm
                  << "/" << m.base.ngpu << " gpu\n";
      }
    }
    std::cerr << "mutation corpus: " << detected << '/'
              << report.mutations.size() << " detected\n";
  }

  if (!cli.out.empty()) {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << argv0 << ": cannot write " << cli.out << '\n';
      return 2;
    }
    ftla::analysis::write_hb_report(report, f);
  } else {
    ftla::analysis::write_hb_report(report, std::cout);
  }
  return report.pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.n = std::atol(v);
    } else if (arg == "--nb") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.nb = std::atol(v);
    } else if (arg == "--ngpus") {
      const char* v = next();
      if (!v || !parse_ngpus(v, &cli.ngpus)) return usage(argv[0]);
    } else if (arg == "--algo") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.algo = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.scheme = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.out = v;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--hb") {
      cli.hb = true;
    } else if (arg == "--migration") {
      cli.migration = true;
    } else if (arg == "--fused-abft") {
      cli.fused_abft = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (cli.hb) return run_hb_mode(cli, argv[0]);

  std::vector<LintOutcome> outcomes;
  try {
    for (const LintCase& c : build_matrix(cli)) {
      if (!cli.algo.empty() && c.algorithm != cli.algo) continue;
      if (!scheme_matches(c.scheme, cli.scheme)) continue;
      LintOutcome o = ftla::analysis::lint_case(c);
      if (!cli.quiet) {
        std::cerr << (o.pass ? "  ok  " : " FAIL ") << c.algorithm << " / "
                  << scheme_label(c.scheme) << " / " << c.ngpu
                  << " gpu: " << o.report.findings.size() << " finding(s), "
                  << o.report.events << " events\n";
      }
      outcomes.push_back(std::move(o));
    }
  } catch (const ftla::FtlaError& e) {
    std::cerr << "ftla-schedule-lint: configuration error: " << e.what()
              << '\n';
    return 2;
  }

  if (outcomes.empty()) {
    std::cerr << "ftla-schedule-lint: no cases matched the filters\n";
    return 2;
  }

  if (!cli.out.empty()) {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << "ftla-schedule-lint: cannot write " << cli.out << '\n';
      return 2;
    }
    ftla::analysis::write_report(outcomes, f);
  } else {
    ftla::analysis::write_report(outcomes, std::cout);
  }

  return ftla::analysis::all_pass(outcomes) ? 0 : 1;
}

/// \file graph_verify.cpp
/// ftla-graph-verify: static task-graph verifier for the FT schedules.
///
/// For every decomposition x scheme x device-count combination the tool
/// extracts the tile-level task graph from a sync-captured dry run,
/// statically proves race-freedom, cycle-freedom and MUD/taint coverage
/// over *every* linearization of the graph (not just the recorded one),
/// validates a second independent trace as a linearization of the graph,
/// cross-checks the static verdicts by DPOR schedule enumeration, and
/// rejects a seeded graph-mutation corpus (dropped dependency edges,
/// contracted verifications, transfers reordered past a fork barrier).
/// The result is a machine-readable JSON certificate.
///
/// Exit status: 0 when every case matches its expected protection
/// profile (the new scheme proves clean over all schedules; the legacy
/// schemes exhibit their documented PCIe gaps), every recorded trace
/// refines its graph, the explorer finds no verdict the static checker
/// missed, and 100% of the mutation corpus is rejected; 1 otherwise;
/// 2 on bad usage or configuration errors.
///
/// With --migration the matrix is extended by the adaptive-balance cases
/// (NewScheme, 2 GPUs, 2:1 modeled skew). Their graphs carry first-class
/// Migrate/AfterMigrate task nodes, must prove clean over every
/// linearization, and force a migration-targeted mutation into the
/// corpus: the certificate fails if no DropMigrationVerify entry exists
/// while any clean graph migrates.
///
/// With --fused-abft every matrix case records with FtOptions::fused_abft
/// on: the trailing-update GEMMs verify their own output tiles in-kernel,
/// so the graphs carry tile-granular FusedTmu verify nodes covering each
/// TMU write window. The same protection profiles must hold — the fused
/// verifies are extra coverage, never a new gap.
///
/// Usage:
///   ftla-graph-verify [--migration] [--fused-abft] [--n N] [--nb NB]
///                     [--ngpus 1,2,4]
///                     [--algo cholesky|lu|qr] [--scheme prior|post|new]
///                     [--scheduler fork-join|dataflow] [--lookahead K]
///                     [--out certificate.json] [--quiet]

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/modelcheck/gverify.hpp"
#include "common/error.hpp"

namespace {

using ftla::analysis::LintCase;

struct CliOptions {
  ftla::index_t n = 192;
  ftla::index_t nb = 32;
  std::vector<int> ngpus = {1, 2, 4};
  std::string algo;    // empty = all
  std::string scheme;  // empty = all
  std::string out;     // empty = stdout only
  bool quiet = false;
  bool migration = false;
  bool fused_abft = false;
  ftla::core::SchedulerKind scheduler = ftla::core::SchedulerKind::ForkJoin;
  ftla::index_t lookahead = 1;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--migration] [--fused-abft] [--n N] [--nb NB]"
               " [--ngpus LIST] [--algo A]"
               " [--scheme S] [--scheduler fork-join|dataflow]"
               " [--lookahead K] [--out FILE] [--quiet]\n";
  return 2;
}

bool parse_ngpus(const std::string& s, std::vector<int>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int g = std::atoi(tok.c_str());
    if (g < 1) return false;
    out->push_back(g);
  }
  return !out->empty();
}

bool scheme_matches(ftla::core::SchemeKind s, const std::string& filter) {
  if (filter.empty()) return true;
  const std::string name = ftla::core::to_string(s);
  return name == filter ||
         (filter == "prior" && s == ftla::core::SchemeKind::PriorOp) ||
         (filter == "post" && s == ftla::core::SchemeKind::PostOp) ||
         (filter == "new" && s == ftla::core::SchemeKind::NewScheme);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.n = std::atol(v);
    } else if (arg == "--nb") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.nb = std::atol(v);
    } else if (arg == "--ngpus") {
      const char* v = next();
      if (!v || !parse_ngpus(v, &cli.ngpus)) return usage(argv[0]);
    } else if (arg == "--algo") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.algo = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.scheme = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string s = v;
      if (s == "fork-join" || s == "forkjoin") {
        cli.scheduler = ftla::core::SchedulerKind::ForkJoin;
      } else if (s == "dataflow") {
        cli.scheduler = ftla::core::SchedulerKind::Dataflow;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--lookahead") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.lookahead = std::atol(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.out = v;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--migration") {
      cli.migration = true;
    } else if (arg == "--fused-abft") {
      cli.fused_abft = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<LintCase> matrix;
  for (LintCase c :
       ftla::analysis::default_matrix(cli.n, cli.nb, cli.ngpus)) {
    if (!cli.algo.empty() && c.algorithm != cli.algo) continue;
    if (!scheme_matches(c.scheme, cli.scheme)) continue;
    c.scheduler = cli.scheduler;
    c.lookahead = cli.lookahead;
    c.fused_abft = cli.fused_abft;
    matrix.push_back(c);
  }
  if (cli.migration) {
    // Migration cases pin their own scheduler (each records the driver
    // that supports adaptive balance); only the size and filters apply.
    for (LintCase c : ftla::analysis::migration_cases(cli.n, cli.nb)) {
      if (!cli.algo.empty() && c.algorithm != cli.algo) continue;
      if (!scheme_matches(c.scheme, cli.scheme)) continue;
      c.lookahead = cli.lookahead;
      c.fused_abft = cli.fused_abft;
      matrix.push_back(std::move(c));
    }
  }
  if (matrix.empty()) {
    std::cerr << "ftla-graph-verify: no cases matched the filters\n";
    return 2;
  }

  ftla::analysis::GraphVerifyReport report;
  try {
    report = ftla::analysis::run_graph_verify(matrix);
  } catch (const ftla::FtlaError& e) {
    std::cerr << "ftla-graph-verify: configuration error: " << e.what()
              << '\n';
    return 2;
  }

  if (!cli.quiet) {
    for (const ftla::analysis::GraphVerifyOutcome& o : report.cases) {
      std::cerr << (o.pass ? "  ok  " : " FAIL ") << o.config.algorithm
                << " / " << ftla::core::to_string(o.config.scheme) << " / "
                << o.config.ngpu << " gpu: " << o.report.nodes << " tasks, "
                << o.report.edges << " deps, "
                << o.report.graph_findings.size() << " graph finding(s), "
                << o.report.coverage_findings.size()
                << " coverage finding(s), " << o.explored.schedules
                << " schedule(s)"
                << (o.refinement.pass ? "" : ", refinement FAILED") << '\n';
    }
    std::size_t detected = 0;
    for (const ftla::analysis::GraphMutationOutcome& m : report.mutations) {
      if (m.detected) ++detected;
      if (!m.detected) {
        std::cerr << " MISS " << m.mutation.name << " on "
                  << m.base.algorithm << "/" << m.base.ngpu << " gpu\n";
      }
    }
    std::cerr << "graph mutation corpus: " << detected << '/'
              << report.mutations.size() << " rejected\n";
  }

  if (!cli.out.empty()) {
    std::ofstream f(cli.out);
    if (!f) {
      std::cerr << "ftla-graph-verify: cannot write " << cli.out << '\n';
      return 2;
    }
    ftla::analysis::write_graph_certificate(report, f);
  } else {
    ftla::analysis::write_graph_certificate(report, std::cout);
  }

  return report.pass ? 0 : 1;
}

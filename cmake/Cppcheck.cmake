# Opt-in cppcheck integration (exhaustive analysis, checked-in
# suppressions). Gated behind FTLA_CPPCHECK and find_program so plain
# builds never require the tool; CI installs it and runs the `cppcheck`
# target, which exits nonzero on any unsuppressed finding.
function(ftla_enable_cppcheck)
  find_program(FTLA_CPPCHECK_EXE cppcheck)
  if(NOT FTLA_CPPCHECK_EXE)
    message(STATUS "FTLA: cppcheck requested but not found; target skipped")
    return()
  endif()

  set(_supp "${PROJECT_SOURCE_DIR}/tools/cppcheck-suppressions.txt")
  add_custom_target(cppcheck
    COMMAND "${FTLA_CPPCHECK_EXE}"
      --enable=warning,performance,portability
      --check-level=exhaustive
      --inline-suppr
      --suppressions-list=${_supp}
      --error-exitcode=1
      --std=c++20
      --language=c++
      -I "${PROJECT_SOURCE_DIR}/src"
      --quiet
      "${PROJECT_SOURCE_DIR}/src"
      "${PROJECT_SOURCE_DIR}/tools"
    WORKING_DIRECTORY "${PROJECT_SOURCE_DIR}"
    COMMENT "cppcheck (exhaustive) over src/ and tools/"
    VERBATIM)
  message(STATUS "FTLA: cppcheck target enabled (${FTLA_CPPCHECK_EXE})")
endfunction()

# Sanitizer build modes.
#
# FTLA_SANITIZE is a list (semicolon- or comma-separated) drawn from:
#   address | undefined | thread | leak
# e.g.  cmake -DFTLA_SANITIZE="address;undefined" ..
#       cmake -DFTLA_SANITIZE=thread ..
#
# Flags are applied globally (compile + link) so every target — src,
# tests, benchmarks, examples — is instrumented consistently; mixing
# instrumented and uninstrumented TUs produces false positives under
# TSan and broken interceptors under ASan.

function(ftla_enable_sanitizers sanitize_list)
  if(NOT sanitize_list)
    return()
  endif()

  # Accept comma-separated values as well as CMake lists.
  string(REPLACE "," ";" _sans "${sanitize_list}")

  set(_valid address undefined thread leak)
  foreach(_san IN LISTS _sans)
    if(NOT _san IN_LIST _valid)
      message(FATAL_ERROR
        "FTLA_SANITIZE: unknown sanitizer '${_san}' "
        "(valid: address, undefined, thread, leak)")
    endif()
  endforeach()

  if("thread" IN_LIST _sans AND ("address" IN_LIST _sans OR "leak" IN_LIST _sans))
    message(FATAL_ERROR
      "FTLA_SANITIZE: 'thread' cannot be combined with 'address' or 'leak'")
  endif()

  string(REPLACE ";" "," _fsan "${_sans}")
  set(_flags -fsanitize=${_fsan} -fno-omit-frame-pointer -g)

  add_compile_options(${_flags})
  add_link_options(-fsanitize=${_fsan})

  message(STATUS "FTLA: sanitizers enabled: ${_fsan}")
endfunction()

# Clang thread-safety analysis (-Wthread-safety). The annotations in
# src/common/annotations.hpp compile to nothing elsewhere, so this is a
# no-op warning on GCC/MSVC rather than an error: CI runs the clang job.
function(ftla_enable_thread_safety_analysis target)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    target_compile_options(${target} INTERFACE
      -Wthread-safety -Werror=thread-safety)
    message(STATUS "FTLA: clang thread-safety analysis enabled (-Werror=thread-safety)")
  else()
    message(WARNING
      "FTLA_THREAD_SAFETY_ANALYSIS requires Clang; "
      "'${CMAKE_CXX_COMPILER_ID}' does not implement -Wthread-safety, ignoring")
  endif()
endfunction()

# GCC static analyzer (-fanalyzer): interprocedural path-sensitive
# checks (leaks, use-after-free, null derefs) at compile time. C++
# support is still maturing in GCC, so this is an opt-in audit mode
# (FTLA_GCC_ANALYZER=ON), not part of the default warning set: findings
# are surfaced as warnings for human review, never -Werror.
function(ftla_enable_gcc_analyzer)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    add_compile_options(-fanalyzer)
    message(STATUS "FTLA: GCC static analyzer enabled (-fanalyzer)")
  else()
    message(WARNING
      "FTLA_GCC_ANALYZER requires GCC; "
      "'${CMAKE_CXX_COMPILER_ID}' does not implement -fanalyzer, ignoring")
  endif()
endfunction()

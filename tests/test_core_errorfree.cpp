// Error-free integration tests of the three FT decompositions: every
// (checksum layout × scheme × GPU count) combination must produce the
// same factors as the host reference, with no spurious detections.

#include <gtest/gtest.h>

#include <tuple>

#include "core/baseline.hpp"
#include "lapack/lapack.hpp"
#include "core/ft_driver.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace ftla::core {
namespace {

using Param = std::tuple<int, int, int>;  // checksum kind, scheme, ngpu

FtOptions make_options(const Param& p, index_t nb) {
  const auto [cs, scheme, ngpu] = p;
  FtOptions opts;
  opts.nb = nb;
  opts.ngpu = ngpu;
  opts.checksum = static_cast<ChecksumKind>(cs);
  opts.scheme = static_cast<SchemeKind>(scheme);
  return opts;
}

class FtSweep : public ::testing::TestWithParam<Param> {};

TEST_P(FtSweep, CholeskyMatchesReferenceAndDetectsNothing) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_spd(n, 21);
  const FtOptions opts = make_options(GetParam(), nb);

  const FtOutput out = ft_cholesky(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_EQ(out.stats.local_restarts, 0u);

  const MatD ref = host_cholesky(a.const_view(), nb);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      ASSERT_NEAR(out.factors(i, j), ref(i, j), 1e-10) << i << "," << j;
  EXPECT_LT(cholesky_residual(a.const_view(), out.factors.const_view()), 1e-12);
}

TEST_P(FtSweep, LuMatchesReferenceAndDetectsNothing) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 22);
  const FtOptions opts = make_options(GetParam(), nb);

  const FtOutput out = ft_lu(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_EQ(out.stats.local_restarts, 0u);

  const MatD ref = host_lu_nopiv(a.const_view(), nb);
  EXPECT_LT(max_abs_diff(out.factors.const_view(), ref.const_view()), 1e-9);
  EXPECT_LT(lu_residual(a.const_view(), out.factors.const_view()), 1e-12);
}

TEST_P(FtSweep, QrMatchesReferenceAndDetectsNothing) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_general(n, n, 23);
  const FtOptions opts = make_options(GetParam(), nb);

  const FtOutput out = ft_qr(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_EQ(out.stats.local_restarts, 0u);

  std::vector<double> tau_ref;
  const MatD ref = host_qr(a.const_view(), nb, tau_ref);
  EXPECT_LT(max_abs_diff(out.factors.const_view(), ref.const_view()), 1e-9);
  for (index_t i = 0; i < n; ++i)
    ASSERT_NEAR(out.tau[static_cast<std::size_t>(i)], tau_ref[static_cast<std::size_t>(i)],
                1e-10);

  // End-to-end: explicit Q·R reconstructs A.
  const MatD q = ::ftla::lapack::orgqr(out.factors.const_view(), out.tau, nb);
  const MatD r = ::ftla::lapack::extract_r(out.factors.const_view());
  EXPECT_LT(qr_residual(a.const_view(), q.const_view(), r.const_view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsSchemesGpus, FtSweep,
    ::testing::Values(
        // Baseline (no checksums) on 1 and 3 GPUs.
        Param{0, 2, 1}, Param{0, 2, 3},
        // Single-side layout with each scheme.
        Param{1, 0, 1}, Param{1, 1, 1}, Param{1, 1, 2},
        // Full layout with each scheme, several GPU counts.
        Param{2, 0, 1}, Param{2, 1, 1}, Param{2, 2, 1}, Param{2, 2, 2},
        Param{2, 2, 3}, Param{2, 1, 4}, Param{2, 2, 8}));

TEST(FtErrorFree, VerificationCountsDependOnScheme) {
  // The prior-op scheme verifies far more blocks around TMU than the new
  // scheme (Table VI's message).
  const index_t n = 128;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 30);

  FtOptions prior;
  prior.nb = nb;
  prior.checksum = ChecksumKind::Full;
  prior.scheme = SchemeKind::PriorOp;
  FtOptions ours = prior;
  ours.scheme = SchemeKind::NewScheme;

  const auto out_prior = ft_lu(a.const_view(), prior);
  const auto out_ours = ft_lu(a.const_view(), ours);
  ASSERT_TRUE(out_prior.ok());
  ASSERT_TRUE(out_ours.ok());
  EXPECT_GT(out_prior.stats.verifications_tmu_before, 0u);
  EXPECT_EQ(out_ours.stats.verifications_tmu_before, 0u);
  EXPECT_GT(out_prior.stats.blocks_verified, out_ours.stats.blocks_verified);
}

TEST(FtErrorFree, FtOverheadTimeIsTracked) {
  const index_t n = 128;
  const index_t nb = 32;
  const MatD a = random_spd(n, 31);
  FtOptions opts;
  opts.nb = nb;
  opts.checksum = ChecksumKind::Full;
  const auto out = ft_cholesky(a.const_view(), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out.stats.encode_seconds, 0.0);
  EXPECT_GT(out.stats.total_seconds, 0.0);
  EXPECT_GT(out.stats.comm_modeled_seconds, 0.0);
  EXPECT_LT(out.stats.ft_overhead_seconds(), out.stats.total_seconds);
}

TEST(FtErrorFree, BaselineHasNoFtWork) {
  const index_t n = 64;
  const MatD a = random_diag_dominant(n, 32);
  const auto out = baseline_lu(a.const_view(), 16, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.stats.blocks_verified, 0u);
  EXPECT_DOUBLE_EQ(out.stats.encode_seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.stats.verify_seconds, 0.0);
}

TEST(FtErrorFree, MultiGpuMatchesSingleGpuBitwiseClose) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 33);
  FtOptions o1;
  o1.nb = nb;
  o1.ngpu = 1;
  o1.checksum = ChecksumKind::Full;
  FtOptions o4 = o1;
  o4.ngpu = 4;
  const auto r1 = ft_lu(a.const_view(), o1);
  const auto r4 = ft_lu(a.const_view(), o4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_LT(max_abs_diff(r1.factors.const_view(), r4.factors.const_view()), 1e-11);
}

TEST(FtErrorFree, RejectsNonMultipleBlockSize) {
  const MatD a = random_spd(100, 34);
  FtOptions opts;
  opts.nb = 48;  // 100 % 48 != 0
  EXPECT_THROW(ft_cholesky(a.const_view(), opts), FtlaError);
}

TEST(FtErrorFree, CholeskyRejectsIndefinite) {
  MatD a = random_symmetric(64, 35);  // symmetric but (almost surely) indefinite
  FtOptions opts;
  opts.nb = 16;
  const auto out = ft_cholesky(a.const_view(), opts);
  EXPECT_EQ(out.stats.status, RunStatus::NumericalFailure);
}

}  // namespace
}  // namespace ftla::core

// Tests for the fault-injection framework: bit-flip semantics, injector
// hook matching, on-chip restore behaviour, PCIe targeting.

#include <gtest/gtest.h>

#include <cmath>

#include "fault/injector.hpp"
#include "matrix/generate.hpp"

namespace ftla::fault {
namespace {

TEST(BitFlip, FlipBitIsInvolution) {
  const double x = 3.14159;
  for (int bit = 0; bit < 64; ++bit) {
    const double flipped = flip_bit(x, bit);
    EXPECT_NE(flipped, x) << "bit " << bit;
    EXPECT_EQ(flip_bit(flipped, bit), x);
  }
}

TEST(BitFlip, SignBit) {
  EXPECT_DOUBLE_EQ(flip_bit(2.5, 63), -2.5);
}

TEST(BitFlip, MaskFlipsMultiple) {
  const double x = 1.0;
  const auto mask = (std::uint64_t{1} << 50) | (std::uint64_t{1} << 40);
  const double y = flip_bits(x, mask);
  EXPECT_NE(y, x);
  EXPECT_EQ(flip_bits(y, mask), x);
}

TEST(BitFlip, SignificantFlipExceedsThreshold) {
  Xoshiro256 rng(1);
  for (double v : {1.0, -3.5, 1e-8, 1e8, 0.0, 123.456}) {
    for (int rep = 0; rep < 20; ++rep) {
      const double f = flip_one_significant(v, rng, 1e-3);
      EXPECT_TRUE(std::isfinite(f));
      EXPECT_GE(relative_change(v, f), 1e-3) << "v=" << v;
    }
  }
}

TEST(BitFlip, MultiBitFlipExceedsThreshold) {
  Xoshiro256 rng(2);
  for (double v : {1.0, -0.25, 1e5, 0.0}) {
    for (int rep = 0; rep < 20; ++rep) {
      const double f = flip_multi_significant(v, rng, 1e-3);
      EXPECT_TRUE(std::isfinite(f));
      EXPECT_GE(relative_change(v, f), 1e-3);
    }
  }
}

TEST(BitFlip, DeterministicGivenSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  EXPECT_EQ(flip_one_significant(2.0, a), flip_one_significant(2.0, b));
}

TEST(Injector, ComputationFiresAtPostCompute) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::Computation;
  spec.site = OpSite{3, OpKind::TMU};
  spec.row = 1;
  spec.col = 2;
  inj.schedule(spec);

  MatD m = random_general(4, 4, 1);
  const double before = m(1, 2);

  // Wrong site: nothing fires.
  inj.post_compute(OpSite{2, OpKind::TMU}, m.view(), {0, 0});
  inj.post_compute(OpSite{3, OpKind::PU}, m.view(), {0, 0});
  EXPECT_FALSE(inj.all_fired());
  EXPECT_EQ(m(1, 2), before);

  inj.post_compute(OpSite{3, OpKind::TMU}, m.view(), {8, 4});
  EXPECT_TRUE(inj.all_fired());
  EXPECT_NE(m(1, 2), before);

  ASSERT_EQ(inj.records().size(), 1u);
  const auto rec = inj.records().front();
  EXPECT_EQ(rec.where, (ElemCoord{1, 2}));
  EXPECT_EQ(rec.global, (ElemCoord{9, 6}));
  EXPECT_EQ(rec.original, before);
  EXPECT_EQ(rec.corrupted, m(1, 2));
}

TEST(Injector, DramBetweenOpsFiresAtPreVerify) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::MemoryDram;
  spec.timing = Timing::BetweenOps;
  spec.site = OpSite{0, OpKind::PD};
  spec.part = Part::Reference;
  inj.schedule(spec);

  MatD m(4, 4, 1.0);
  // During-op hook must not trigger a between-ops fault.
  inj.pre_compute(OpSite{0, OpKind::PD}, Part::Reference, m.view(), {0, 0});
  EXPECT_FALSE(inj.all_fired());
  // Wrong part must not trigger either.
  inj.pre_verify(OpSite{0, OpKind::PD}, Part::Update, m.view(), {0, 0});
  EXPECT_FALSE(inj.all_fired());

  inj.pre_verify(OpSite{0, OpKind::PD}, Part::Reference, m.view(), {0, 0});
  EXPECT_TRUE(inj.all_fired());
}

TEST(Injector, DramDuringOpFiresAtPreCompute) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::MemoryDram;
  spec.timing = Timing::DuringOp;
  spec.site = OpSite{1, OpKind::TMU};
  spec.part = Part::Update;
  inj.schedule(spec);

  MatD m(4, 4, 1.0);
  inj.pre_verify(OpSite{1, OpKind::TMU}, Part::Update, m.view(), {0, 0});
  EXPECT_FALSE(inj.all_fired());
  inj.pre_compute(OpSite{1, OpKind::TMU}, Part::Update, m.view(), {0, 0});
  EXPECT_TRUE(inj.all_fired());
}

TEST(Injector, OnChipCorruptsThenRestores) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::MemoryOnChip;
  spec.site = OpSite{2, OpKind::PU};
  spec.part = Part::Reference;
  spec.row = 0;
  spec.col = 0;
  inj.schedule(spec);

  MatD m(2, 2, 5.0);
  inj.pre_compute(OpSite{2, OpKind::PU}, Part::Reference, m.view(), {0, 0});
  EXPECT_NE(m(0, 0), 5.0);  // corrupted during the op

  MatD out(2, 2, 0.0);
  inj.post_compute(OpSite{2, OpKind::PU}, out.view(), {0, 0});
  EXPECT_EQ(m(0, 0), 5.0);  // stored cell restored after the op
  ASSERT_EQ(inj.records().size(), 1u);
  EXPECT_TRUE(inj.records().front().restored);
}

TEST(Injector, PcieTargetsSpecificGpu) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::Pcie;
  spec.site = OpSite{0, OpKind::BroadcastH2D};
  spec.target_gpu = 2;
  inj.schedule(spec);

  MatD m(3, 3, 1.0);
  inj.post_transfer(OpSite{0, OpKind::BroadcastH2D}, 0, m.view(), {0, 0});
  inj.post_transfer(OpSite{0, OpKind::BroadcastH2D}, 1, m.view(), {0, 0});
  EXPECT_FALSE(inj.all_fired());
  inj.post_transfer(OpSite{0, OpKind::BroadcastH2D}, 2, m.view(), {0, 0});
  EXPECT_TRUE(inj.all_fired());
  EXPECT_EQ(inj.records().front().gpu, 2);
}

TEST(Injector, PcieAnyGpuFiresOnFirstReceiver) {
  FaultInjector inj;
  FaultSpec spec;
  spec.type = FaultType::Pcie;
  spec.site = OpSite{1, OpKind::BroadcastD2D};
  spec.target_gpu = -1;
  inj.schedule(spec);

  MatD m(2, 2, 1.0);
  inj.post_transfer(OpSite{1, OpKind::BroadcastD2D}, 5, m.view(), {0, 0});
  EXPECT_TRUE(inj.all_fired());
  EXPECT_EQ(inj.records().front().gpu, 5);
}

TEST(Injector, RandomElementSelectionIsDeterministic) {
  for (int rep = 0; rep < 2; ++rep) {
    FaultInjector inj;
    FaultSpec spec;
    spec.type = FaultType::Computation;
    spec.site = OpSite{0, OpKind::TMU};
    spec.seed = 99;  // row/col = -1: random
    inj.schedule(spec);
    MatD m(8, 8, 1.0);
    inj.post_compute(OpSite{0, OpKind::TMU}, m.view(), {0, 0});
    static ElemCoord first_where;
    if (rep == 0)
      first_where = inj.records().front().where;
    else
      EXPECT_EQ(inj.records().front().where, first_where);
  }
}

TEST(Injector, ClearRemovesEverything) {
  FaultInjector inj;
  inj.schedule(FaultSpec{});
  EXPECT_EQ(inj.num_pending(), 1u);
  inj.clear();
  EXPECT_TRUE(inj.all_fired());
  EXPECT_TRUE(inj.records().empty());
}

TEST(Describe, HumanReadable) {
  FaultSpec spec;
  spec.type = FaultType::Pcie;
  spec.site = OpSite{4, OpKind::BroadcastH2D};
  const auto s = describe(spec);
  EXPECT_NE(s.find("pcie"), std::string::npos);
  EXPECT_NE(s.find("BcastH2D"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
}

}  // namespace
}  // namespace ftla::fault

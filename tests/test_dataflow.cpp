// Dataflow-scheduler tests: the out-of-order drivers must produce
// bit-identical factors and identical FT bookkeeping to the fork-join
// oracle at every (algorithm × scheme × GPU count × lookahead) point,
// cancellation must abort mid-graph without leaking device arenas, and
// selecting ForkJoin explicitly must stay byte-stable (trace JSONL and
// schedule-lint JSON) against the default configuration.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <tuple>

#include "analysis/lint.hpp"
#include "core/baseline.hpp"
#include "core/ft_driver.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "sim/system.hpp"
#include "trace/recorder.hpp"

namespace ftla::core {
namespace {

using Param = std::tuple<int, int, int, index_t>;  // checksum, scheme, ngpu, lookahead

FtOptions make_options(const Param& p, index_t nb) {
  const auto [cs, scheme, ngpu, lookahead] = p;
  FtOptions opts;
  opts.nb = nb;
  opts.ngpu = ngpu;
  opts.checksum = static_cast<ChecksumKind>(cs);
  opts.scheme = static_cast<SchemeKind>(scheme);
  opts.scheduler = SchedulerKind::Dataflow;
  opts.lookahead = lookahead;
  return opts;
}

// FT bookkeeping that must not depend on the scheduler. Timings and
// comm_modeled_seconds legitimately differ (that is the point of
// lookahead), so they are excluded.
void expect_same_ft_work(const FtStats& df, const FtStats& fj) {
  EXPECT_EQ(df.status, fj.status);
  EXPECT_EQ(df.errors_detected, fj.errors_detected);
  EXPECT_EQ(df.local_restarts, fj.local_restarts);
  EXPECT_EQ(df.blocks_verified, fj.blocks_verified);
  EXPECT_EQ(df.verifications_pd_before, fj.verifications_pd_before);
  EXPECT_EQ(df.verifications_pd_after, fj.verifications_pd_after);
  EXPECT_EQ(df.verifications_pu_before, fj.verifications_pu_before);
  EXPECT_EQ(df.verifications_pu_after, fj.verifications_pu_after);
  EXPECT_EQ(df.verifications_tmu_before, fj.verifications_tmu_before);
  EXPECT_EQ(df.verifications_tmu_after, fj.verifications_tmu_after);
  EXPECT_EQ(df.comm_errors_corrected, fj.comm_errors_corrected);
  EXPECT_EQ(df.corrected_0d, fj.corrected_0d);
  EXPECT_EQ(df.corrected_1d, fj.corrected_1d);
  EXPECT_EQ(df.checksum_rebuilds, fj.checksum_rebuilds);
}

class DataflowSweep : public ::testing::TestWithParam<Param> {};

TEST_P(DataflowSweep, CholeskyBitIdenticalToForkJoin) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_spd(n, 41);
  const FtOptions df_opts = make_options(GetParam(), nb);
  FtOptions fj_opts = df_opts;
  fj_opts.scheduler = SchedulerKind::ForkJoin;

  const FtOutput df = ft_cholesky(a.const_view(), df_opts);
  const FtOutput fj = ft_cholesky(a.const_view(), fj_opts);
  ASSERT_TRUE(df.ok()) << df.stats.summary();
  ASSERT_TRUE(fj.ok());
  EXPECT_EQ(max_abs_diff(df.factors.const_view(), fj.factors.const_view()), 0.0);
  expect_same_ft_work(df.stats, fj.stats);
}

TEST_P(DataflowSweep, LuBitIdenticalToForkJoin) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 42);
  const FtOptions df_opts = make_options(GetParam(), nb);
  FtOptions fj_opts = df_opts;
  fj_opts.scheduler = SchedulerKind::ForkJoin;

  const FtOutput df = ft_lu(a.const_view(), df_opts);
  const FtOutput fj = ft_lu(a.const_view(), fj_opts);
  ASSERT_TRUE(df.ok()) << df.stats.summary();
  ASSERT_TRUE(fj.ok());
  EXPECT_EQ(max_abs_diff(df.factors.const_view(), fj.factors.const_view()), 0.0);
  expect_same_ft_work(df.stats, fj.stats);
}

TEST_P(DataflowSweep, QrBitIdenticalToForkJoin) {
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_general(n, n, 43);
  const FtOptions df_opts = make_options(GetParam(), nb);
  FtOptions fj_opts = df_opts;
  fj_opts.scheduler = SchedulerKind::ForkJoin;

  const FtOutput df = ft_qr(a.const_view(), df_opts);
  const FtOutput fj = ft_qr(a.const_view(), fj_opts);
  ASSERT_TRUE(df.ok()) << df.stats.summary();
  ASSERT_TRUE(fj.ok());
  EXPECT_EQ(max_abs_diff(df.factors.const_view(), fj.factors.const_view()), 0.0);
  ASSERT_EQ(df.tau.size(), fj.tau.size());
  for (std::size_t i = 0; i < df.tau.size(); ++i) {
    ASSERT_EQ(df.tau[i], fj.tau[i]) << i;
  }
  expect_same_ft_work(df.stats, fj.stats);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsSchemesGpusLookahead, DataflowSweep,
    ::testing::Values(
        // Baseline (no checksums).
        Param{0, 2, 1, 1}, Param{0, 2, 3, 1},
        // Single-side layout with each scheme.
        Param{1, 0, 1, 1}, Param{1, 1, 2, 1},
        // Full layout with each scheme, several GPU counts.
        Param{2, 0, 1, 1}, Param{2, 1, 1, 1}, Param{2, 2, 1, 1},
        Param{2, 2, 2, 1}, Param{2, 2, 3, 1}, Param{2, 1, 4, 1},
        // Lookahead depths: 0 serializes like fork-join, deeper values
        // only widen the window — results must not change.
        Param{2, 2, 2, 0}, Param{2, 2, 2, 3}, Param{2, 2, 4, 5}));

TEST(Dataflow, PeriodicSweepAndHeuristicMatchForkJoin) {
  const index_t n = 128;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 44);
  FtOptions df_opts;
  df_opts.nb = nb;
  df_opts.ngpu = 2;
  df_opts.checksum = ChecksumKind::Full;
  df_opts.scheme = SchemeKind::NewScheme;
  df_opts.periodic_trailing_check = 2;
  df_opts.scheduler = SchedulerKind::Dataflow;
  FtOptions fj_opts = df_opts;
  fj_opts.scheduler = SchedulerKind::ForkJoin;

  const FtOutput df = ft_lu(a.const_view(), df_opts);
  const FtOutput fj = ft_lu(a.const_view(), fj_opts);
  ASSERT_TRUE(df.ok()) << df.stats.summary();
  ASSERT_TRUE(fj.ok());
  EXPECT_EQ(max_abs_diff(df.factors.const_view(), fj.factors.const_view()), 0.0);
  expect_same_ft_work(df.stats, fj.stats);
  EXPECT_GT(df.stats.verifications_tmu_after, 0u);
}

TEST(Dataflow, InjectorFallsBackToForkJoin) {
  // A fault injector forces the fork-join oracle even when Dataflow is
  // requested — recovery that re-plans future work needs it.
  const index_t n = 64;
  const MatD a = random_diag_dominant(n, 45);
  FtOptions opts;
  opts.nb = 16;
  opts.checksum = ChecksumKind::Full;
  opts.scheduler = SchedulerKind::Dataflow;
  fault::FaultInjector inj;  // nothing scheduled: zero faults
  const FtOutput out = ft_lu(a.const_view(), opts, &inj);
  ASSERT_TRUE(out.ok());
  const FtOutput ref = ft_lu(a.const_view(), opts);
  EXPECT_EQ(max_abs_diff(out.factors.const_view(), ref.factors.const_view()), 0.0);
}

TEST(Dataflow, CancellationAbortsMidGraph) {
  const index_t n = 256;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 46);
  std::atomic<int> polls{0};
  FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 2;
  opts.checksum = ChecksumKind::Full;
  opts.scheduler = SchedulerKind::Dataflow;
  opts.cancel = [&polls] { return ++polls > 40; };
  const FtOutput out = ft_lu(a.const_view(), opts);
  EXPECT_EQ(out.stats.status, RunStatus::Cancelled);
  EXPECT_GT(polls.load(), 40);
}

TEST(Dataflow, MidGraphAbortLeavesBorrowedSystemReusable) {
  // A pooled system must come back arena-clean from a cancelled dataflow
  // run (mid-graph abort) and support a subsequent full run.
  const index_t n = 128;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 47);
  sim::HeterogeneousSystem sys(2);
  const auto host_base = sys.cpu().bytes_allocated();
  FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 2;
  opts.checksum = ChecksumKind::Full;
  opts.scheduler = SchedulerKind::Dataflow;
  opts.system = &sys;

  std::atomic<int> polls{0};
  opts.cancel = [&polls] { return ++polls > 10; };
  const FtOutput cancelled = ft_lu(a.const_view(), opts);
  EXPECT_EQ(cancelled.stats.status, RunStatus::Cancelled);
  EXPECT_EQ(sys.cpu().bytes_allocated(), host_base);
  EXPECT_EQ(sys.gpu_bytes_allocated(), 0u);

  opts.cancel = nullptr;
  const FtOutput out = ft_lu(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(sys.gpu_bytes_allocated(), 0u);

  FtOptions ref_opts;
  ref_opts.nb = nb;
  ref_opts.ngpu = 2;
  ref_opts.checksum = ChecksumKind::Full;
  const FtOutput ref = ft_lu(a.const_view(), ref_opts);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(max_abs_diff(out.factors.const_view(), ref.factors.const_view()), 0.0);
}

TEST(Dataflow, ForkJoinTraceBytesUnchangedByDefaultOptions) {
  // Byte-stability pin: the default-constructed options and an explicit
  // ForkJoin + lookahead request must produce byte-identical capture-off
  // trace JSONL and byte-identical legacy schedule-lint v2 JSON. Pinned
  // at ngpu=1 where fork-join emission is single-threaded, so the trace
  // is run-to-run deterministic and the comparison is exact.
  const index_t n = 96;
  const index_t nb = 16;
  const MatD a = random_diag_dominant(n, 48);

  const auto run_jsonl = [&](SchedulerKind sched, index_t lookahead) {
    trace::TraceRecorder rec;  // sync capture off by default
    FtOptions opts;
    opts.nb = nb;
    opts.checksum = ChecksumKind::Full;
    opts.trace = &rec;
    opts.scheduler = sched;
    opts.lookahead = lookahead;
    const FtOutput out = ft_lu(a.const_view(), opts);
    EXPECT_TRUE(out.ok());
    std::ostringstream os;
    trace::write_jsonl(rec.snapshot(), os);
    return os.str();
  };
  const std::string base = run_jsonl(SchedulerKind::ForkJoin, 1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, run_jsonl(SchedulerKind::ForkJoin, 5));

  const auto lint_json = [](SchedulerKind sched, index_t lookahead) {
    analysis::LintCase c;
    c.algorithm = "lu";
    c.scheduler = sched;
    c.lookahead = lookahead;
    std::ostringstream os;
    analysis::write_report({analysis::lint_case(c)}, os);
    return os.str();
  };
  const std::string lint_base = lint_json(SchedulerKind::ForkJoin, 1);
  EXPECT_FALSE(lint_base.empty());
  EXPECT_EQ(lint_base, lint_json(SchedulerKind::ForkJoin, 5));
}

}  // namespace
}  // namespace ftla::core

// Adaptive load-balancing integration tests: on a skewed fleet the
// balancer must actually migrate trailing block-columns, the migration
// must be checksum-protected end to end (no spurious detections), and —
// since re-partitioning only changes *where* each block update runs, not
// the arithmetic — the factors must stay bit-identical to the static
// block-cyclic oracle.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ft_driver.hpp"
#include "matrix/generate.hpp"
#include "sim/system.hpp"

namespace ftla::core {
namespace {

FtOptions skewed_options(int ngpu, bool adaptive,
                         SchedulerKind sched = SchedulerKind::ForkJoin) {
  FtOptions opts;
  opts.nb = 16;
  opts.ngpu = ngpu;
  opts.checksum = ChecksumKind::Full;
  opts.scheme = SchemeKind::NewScheme;
  opts.scheduler = sched;
  opts.adaptive_balance = adaptive;
  opts.gpu_time_scale = {1.0, 2.0};  // gpu1 is modeled twice as slow
  return opts;
}

void expect_bitwise_equal(const MatD& a, const MatD& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "block element (" << i << "," << j
                                  << ") diverged from the static oracle";
    }
  }
}

TEST(AdaptiveBalance, CholeskyMigratesAndMatchesStaticOracleBitwise) {
  const index_t n = 192;
  const MatD a = random_spd(n, 31);

  const FtOutput stat = ft_cholesky(a.const_view(), skewed_options(2, false));
  const FtOutput adap = ft_cholesky(a.const_view(), skewed_options(2, true));
  ASSERT_TRUE(stat.ok()) << stat.stats.summary();
  ASSERT_TRUE(adap.ok()) << adap.stats.summary();

  EXPECT_EQ(stat.stats.tiles_migrated, 0u);
  EXPECT_GT(adap.stats.tiles_migrated, 0u);
  EXPECT_EQ(adap.stats.errors_detected, 0u) << adap.stats.summary();
  EXPECT_EQ(adap.stats.comm_errors_corrected, 0u);
  expect_bitwise_equal(adap.factors, stat.factors);

  // Both runs account the same deterministic cost model; shifting work
  // off the slow device must shrink the modeled compute time.
  EXPECT_GT(stat.stats.compute_modeled_seconds, 0.0);
  EXPECT_LT(adap.stats.compute_modeled_seconds,
            stat.stats.compute_modeled_seconds);
}

TEST(AdaptiveBalance, LuMigratesAndMatchesStaticOracleBitwise) {
  const index_t n = 192;
  const MatD a = random_diag_dominant(n, 32);

  const FtOutput stat = ft_lu(a.const_view(), skewed_options(2, false));
  const FtOutput adap = ft_lu(a.const_view(), skewed_options(2, true));
  ASSERT_TRUE(stat.ok()) << stat.stats.summary();
  ASSERT_TRUE(adap.ok()) << adap.stats.summary();

  EXPECT_GT(adap.stats.tiles_migrated, 0u);
  EXPECT_EQ(adap.stats.errors_detected, 0u) << adap.stats.summary();
  expect_bitwise_equal(adap.factors, stat.factors);
  EXPECT_LT(adap.stats.compute_modeled_seconds,
            stat.stats.compute_modeled_seconds);
}

TEST(AdaptiveBalance, QrMigratesAndMatchesStaticOracleBitwise) {
  const index_t n = 192;
  const MatD a = random_general(n, n, 33);

  const FtOutput stat = ft_qr(a.const_view(), skewed_options(2, false));
  const FtOutput adap = ft_qr(a.const_view(), skewed_options(2, true));
  ASSERT_TRUE(stat.ok()) << stat.stats.summary();
  ASSERT_TRUE(adap.ok()) << adap.stats.summary();

  EXPECT_GT(adap.stats.tiles_migrated, 0u);
  EXPECT_EQ(adap.stats.errors_detected, 0u) << adap.stats.summary();
  expect_bitwise_equal(adap.factors, stat.factors);
  ASSERT_EQ(adap.tau.size(), stat.tau.size());
  for (std::size_t i = 0; i < stat.tau.size(); ++i) {
    ASSERT_EQ(adap.tau[i], stat.tau[i]) << "tau[" << i << "]";
  }
  EXPECT_LT(adap.stats.compute_modeled_seconds,
            stat.stats.compute_modeled_seconds);
}

TEST(AdaptiveBalance, DataflowCholeskyPlansTheSameMigrationsUpFront) {
  const index_t n = 192;
  const MatD a = random_spd(n, 34);

  const FtOutput fj = ft_cholesky(a.const_view(), skewed_options(2, true));
  const FtOutput df = ft_cholesky(a.const_view(),
                                  skewed_options(2, true, SchedulerKind::Dataflow));
  ASSERT_TRUE(fj.ok()) << fj.stats.summary();
  ASSERT_TRUE(df.ok()) << df.stats.summary();

  // The dataflow driver pre-plans migrations at submission time via the
  // same deterministic replay the fork-join driver runs live.
  EXPECT_EQ(df.stats.tiles_migrated, fj.stats.tiles_migrated);
  EXPECT_GT(df.stats.tiles_migrated, 0u);
  EXPECT_EQ(df.stats.errors_detected, 0u) << df.stats.summary();
  expect_bitwise_equal(df.factors, fj.factors);
  EXPECT_DOUBLE_EQ(df.stats.compute_modeled_seconds,
                   fj.stats.compute_modeled_seconds);
}

TEST(AdaptiveBalance, LuQrDataflowFallsBackToForkJoinWithMigrations) {
  const index_t n = 128;
  const MatD a = random_diag_dominant(n, 35);
  const FtOutput out =
      ft_lu(a.const_view(), skewed_options(2, true, SchedulerKind::Dataflow));
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_GT(out.stats.tiles_migrated, 0u);

  const MatD q = random_general(n, n, 36);
  const FtOutput qr =
      ft_qr(q.const_view(), skewed_options(2, true, SchedulerKind::Dataflow));
  ASSERT_TRUE(qr.ok()) << qr.stats.summary();
  EXPECT_GT(qr.stats.tiles_migrated, 0u);
}

TEST(AdaptiveBalance, SingleGpuHasNowhereToMigrate) {
  const index_t n = 96;
  const MatD a = random_spd(n, 37);
  FtOptions one = skewed_options(1, true);
  one.gpu_time_scale = {1.0};
  const FtOutput o1 = ft_cholesky(a.const_view(), one);
  ASSERT_TRUE(o1.ok());
  EXPECT_EQ(o1.stats.tiles_migrated, 0u);
}

TEST(AdaptiveBalance, HomogeneousFleetMayEvenTheTailButStaysBitIdentical) {
  // Equal rates do not mean no migrations: the block-cyclic weighted
  // tail is uneven near the end, and evening it is a legitimate
  // modeled-makespan win. Correctness must be unaffected either way.
  const index_t n = 96;
  const MatD a = random_spd(n, 37);
  FtOptions homog = skewed_options(2, true);
  homog.gpu_time_scale = {1.0, 1.0};
  const FtOutput o2 = ft_cholesky(a.const_view(), homog);
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o2.stats.errors_detected, 0u);
  const FtOutput o2s = ft_cholesky(a.const_view(), skewed_options(2, false));
  ASSERT_LE(o2.stats.compute_modeled_seconds,
            o2s.stats.compute_modeled_seconds);
  expect_bitwise_equal(o2.factors, o2s.factors);
}

TEST(AdaptiveBalance, RequiresFullChecksums) {
  const index_t n = 64;
  const MatD a = random_spd(n, 38);
  FtOptions opts = skewed_options(2, true);
  opts.checksum = ChecksumKind::SingleSide;
  EXPECT_THROW((void)ft_cholesky(a.const_view(), opts), FtlaError);
}

TEST(AdaptiveBalance, RejectsNonPositiveTimeScales) {
  const index_t n = 64;
  const MatD a = random_spd(n, 39);
  FtOptions opts = skewed_options(2, true);
  opts.gpu_time_scale = {1.0, 0.0};
  EXPECT_THROW((void)ft_cholesky(a.const_view(), opts), FtlaError);
}

TEST(AdaptiveBalance, MidRunSlowdownShiftsWorkAway) {
  // A device that degrades mid-run (e.g. thermal throttling) should shed
  // tiles once the estimator catches up — the on_iteration hook is how
  // the benchs model the fault.
  const index_t n = 192;
  const MatD a = random_spd(n, 40);
  sim::HeterogeneousSystem sys(2);
  FtOptions opts = skewed_options(2, true);
  opts.gpu_time_scale = {1.0, 1.0};  // homogeneous until the fault
  opts.system = &sys;
  bool slowed = false;
  opts.on_iteration = [&](index_t k) {
    if (k == 3 && !slowed) {
      slowed = true;
      sys.gpu(1).set_time_scale(4.0);
    }
  };
  const FtOutput out = ft_cholesky(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_GT(out.stats.tiles_migrated, 0u);
  EXPECT_EQ(out.stats.errors_detected, 0u);

  const FtOutput oracle = ft_cholesky(a.const_view(), skewed_options(2, false));
  expect_bitwise_equal(out.factors, oracle.factors);
}

}  // namespace
}  // namespace ftla::core

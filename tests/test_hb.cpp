// Tests for the happens-before analyzer (src/analysis/hb): vector-clock
// semantics on hand-built sync-captured traces, race detection across
// execution contexts, DAG-order coverage verdicts (including a case the
// linear replay gets wrong), malformed-sync findings, the seeded
// mutation corpus, and the capture-off serialization byte-format guard.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/coverage.hpp"
#include "analysis/hb.hpp"
#include "analysis/hb_lint.hpp"
#include "analysis/lint.hpp"
#include "analysis/mutate.hpp"
#include "sim/ownership.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace ftla::analysis {
namespace {

using core::SchemeKind;
using fault::OpKind;
using fault::Part;
using sim::SyncEdgeKind;
using trace::BlockRange;
using trace::CheckPoint;
using trace::EventKind;
using trace::RegionClass;
using trace::TraceRecorder;
using trace::TransferCtx;

namespace ownership = sim::ownership;

/// Minimal sync-captured run skeleton: one iteration, the given body,
/// then RunEnd. The body runs on the host context unless it binds a
/// device itself (see on_gpu).
template <typename Body>
trace::Trace sync_skeleton(Body&& body) {
  TraceRecorder rec;
  rec.enable_sync_capture(true);
  rec.begin_run({"lu", "new-scheme", "full", 2, 64, 32, 2});
  rec.begin_iteration(0);
  body(rec);
  rec.end_iteration(0);
  rec.end_run();
  return rec.snapshot();
}

/// Emits `body`'s events from GPU g's execution context. The recorder
/// resolves contexts from the ownership thread binding, so a scoped
/// binding on the calling thread stands in for a stream worker.
template <typename Body>
void on_gpu(int g, Body&& body) {
  ownership::ScopedDevice bind(static_cast<device_id_t>(g + 1));
  body();
}

/// Paired raw-link + annotated arrival, as the drivers emit them. The
/// link is recorded from the current context, so it carries the sender's
/// history into the arrival's context. Devices are trace indices.
void arrive(TraceRecorder& rec, TransferCtx ctx, int from, int to,
            const BlockRange& region,
            RegionClass rclass = RegionClass::Data) {
  rec.link_transfer(static_cast<device_id_t>(from + 1),
                    static_cast<device_id_t>(to + 1), 1024);
  rec.transfer_arrive(ctx, from, to, region, rclass);
}

bool has_sync_kind(const HbReport& r, HbFindingKind k) {
  for (const HbFinding& f : r.sync_findings) {
    if (f.kind == k) return true;
  }
  return false;
}

bool has_coverage_kind(const HbReport& r, FindingKind k) {
  for (const Finding& f : r.coverage_findings) {
    if (f.kind == k) return true;
  }
  return false;
}

// --- analyzability ------------------------------------------------------

TEST(Hb, TraceWithoutSyncCaptureIsNotAnalyzable) {
  TraceRecorder rec;  // capture off
  rec.begin_run({"lu", "new-scheme", "full", 1, 64, 32, 2});
  rec.end_run();
  const HbReport r = analyze_hb(rec.snapshot());
  EXPECT_FALSE(r.analyzable);
  EXPECT_FALSE(r.clean());
  ASSERT_EQ(r.sync_findings.size(), 1u);
  EXPECT_EQ(r.sync_findings[0].kind, HbFindingKind::NoSyncInfo);
}

// --- races --------------------------------------------------------------

TEST(Hb, ProgramOrderWithinOneContextIsNeverARace) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, 0, BlockRange::single(0, 0));
    rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    rec.compute_write(OpKind::TMU, 0, BlockRange::single(0, 0));
  });
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(r.analyzable);
  EXPECT_TRUE(r.race_free());
}

TEST(Hb, UnorderedCrossContextConflictIsARace) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, 0, BlockRange::single(1, 1));
    on_gpu(0, [&] {
      // No sync edge from the host write: a write-write race on the tile.
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(1, 1));
    });
  });
  const HbReport r = analyze_hb(t);
  ASSERT_FALSE(r.race_free());
  const HbFinding& f = r.sync_findings.front();
  EXPECT_EQ(f.kind, HbFindingKind::Race);
  EXPECT_EQ(f.device, 0);
  EXPECT_EQ(f.br, 1);
  EXPECT_EQ(f.bc, 1);
  EXPECT_NE(f.seq_a, f.seq_b);  // both events of the pair are named
  EXPECT_NE(f.detail.find("seq"), std::string::npos);
}

TEST(Hb, ReadReadSharingIsNotARace) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    on_gpu(0, [&] {
      rec.compute_read(OpKind::TMU, Part::Reference, 0,
                       BlockRange::single(0, 0));
    });
  });
  EXPECT_TRUE(analyze_hb(t).race_free());
}

TEST(Hb, DisjointRegionsDoNotConflict) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, 0, BlockRange::single(0, 0));
    on_gpu(0, [&] {
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(1, 1));
    });
  });
  EXPECT_TRUE(analyze_hb(t).race_free());
}

TEST(Hb, ForkJoinEdgesOrderTheParallelSection) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    const std::uint64_t fork = rec.fresh_sync_id();
    const std::uint64_t join = rec.fresh_sync_id();
    rec.compute_write(OpKind::PD, 0, BlockRange::single(0, 0));
    rec.sync_signal(SyncEdgeKind::Fork, fork);
    on_gpu(0, [&] {
      rec.sync_wait(SyncEdgeKind::Fork, fork);
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(0, 0));
      rec.sync_signal(SyncEdgeKind::Join, join);
    });
    rec.sync_wait(SyncEdgeKind::Join, join);
    rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
  });
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(r.race_free());
  EXPECT_EQ(r.contexts, 2u);
  EXPECT_EQ(r.sync_edges, 4u);
}

TEST(Hb, DroppingTheJoinWaitExposesTheRace) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    const std::uint64_t fork = rec.fresh_sync_id();
    rec.sync_signal(SyncEdgeKind::Fork, fork);
    on_gpu(0, [&] {
      rec.sync_wait(SyncEdgeKind::Fork, fork);
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(0, 0));
      // Join signal dropped along with the host's wait: nothing orders
      // the worker's write before the host read below.
    });
    rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
  });
  const HbReport r = analyze_hb(t);
  ASSERT_FALSE(r.race_free());
  EXPECT_EQ(r.sync_findings.front().kind, HbFindingKind::Race);
}

TEST(Hb, EventRecordWaitOrdersAcrossStreams) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    const std::uint64_t ev = rec.fresh_sync_id();
    on_gpu(0, [&] {
      rec.compute_write(OpKind::PU, 0, BlockRange::single(0, 1));
      rec.sync_signal(SyncEdgeKind::EventRecord, ev);
    });
    on_gpu(1, [&] {
      rec.sync_wait(SyncEdgeKind::EventWait, ev);
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(0, 1));
    });
  });
  EXPECT_TRUE(analyze_hb(t).race_free());
}

TEST(Hb, TransferCompletionOrdersSenderIntoReceiver) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, 0, BlockRange::single(0, 0));
    rec.link_transfer(0, 1, 1024);  // CPU -> GPU 0 in simulator ids
    on_gpu(0, [&] {
      rec.transfer_arrive(TransferCtx::BroadcastH2D, trace::kHost, 0,
                          BlockRange::single(0, 0));
      rec.verify(CheckPoint::AfterPDBroadcast, 0, BlockRange::single(0, 0));
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(r.race_free());
  EXPECT_EQ(r.link_transfers, 1u);
  EXPECT_EQ(r.transfer_arrivals, 1u);
  EXPECT_TRUE(r.clean());
}

// --- malformed sync metadata -------------------------------------------

TEST(Hb, WaitWithoutSignalIsFlagged) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.sync_wait(SyncEdgeKind::Join, 77);  // nobody ever signalled 77
  });
  const HbReport r = analyze_hb(t);
  ASSERT_TRUE(has_sync_kind(r, HbFindingKind::WaitWithoutSignal));
  EXPECT_NE(r.sync_findings.front().detail.find("77"), std::string::npos);
}

TEST(Hb, ArrivalWithoutLinkPairingIsFlagged) {
  auto t = sync_skeleton([](TraceRecorder& rec) {
    // Annotated arrival with no preceding raw link observation: the
    // recorder leaves sync_id at 0, which the analyzer must reject.
    rec.transfer_arrive(TransferCtx::BroadcastH2D, trace::kHost, 0,
                        BlockRange::single(0, 0));
  });
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(has_sync_kind(r, HbFindingKind::UnmatchedArrival));
  // The link/arrival count mismatch independently marks the trace
  // incomplete, matching the legacy analyzer's cross-check.
  EXPECT_TRUE(has_coverage_kind(r, FindingKind::TraceIncomplete));
}

TEST(Hb, TruncatedTraceIsIncomplete) {
  TraceRecorder rec;
  rec.enable_sync_capture(true);
  rec.begin_run({"lu", "new-scheme", "full", 1, 64, 32, 2});
  rec.begin_iteration(0);  // no end_iteration, no end_run
  const HbReport r = analyze_hb(rec.snapshot());
  EXPECT_TRUE(r.analyzable);
  EXPECT_TRUE(has_coverage_kind(r, FindingKind::TraceIncomplete));
  EXPECT_FALSE(r.clean());
}

// --- DAG-order coverage -------------------------------------------------

TEST(HbCoverage, UnverifiedArrivalConsumeIsFlagged) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    on_gpu(0, [&] {
      arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
             BlockRange::single(0, 0));
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
}

TEST(HbCoverage, VerifyOrderedBetweenTaintAndConsumeCovers) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    on_gpu(0, [&] {
      arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
             BlockRange::single(0, 0));
      rec.verify(CheckPoint::AfterPDBroadcast, 0, BlockRange::single(0, 0));
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  EXPECT_FALSE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
}

TEST(HbCoverage, FindingNamesTaintSourceAndConsumeSeqs) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    on_gpu(0, [&] {
      arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
             BlockRange::single(0, 0));
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  bool named = false;
  for (const Finding& f : r.coverage_findings) {
    if (f.kind != FindingKind::UnverifiedTransferConsume) continue;
    named = f.detail.find("taint source seq") != std::string::npos &&
            f.detail.find("consume seq") != std::string::npos;
  }
  EXPECT_TRUE(named);
}

/// The case the linear replay gets wrong: in *recorded* order the trace
/// reads arrive -> verify -> consume, so the sequential analyzer calls
/// the window covered. But the verify ran on the host context with no
/// sync edge to the arrival, so under happens-before it is concurrent
/// with the taint — it may have checked the tile before the payload
/// landed. The HB analyzer must keep the window open (and flag the
/// verify/arrival race that causes it).
TEST(HbCoverage, ConcurrentVerifyDoesNotCoverEvenIfSequencedBetween) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    rec.link_transfer(0, 1, 1024);
    on_gpu(0, [&] {
      rec.transfer_arrive(TransferCtx::BroadcastH2D, trace::kHost, 0,
                          BlockRange::single(0, 0));
    });
    rec.verify(CheckPoint::AfterPDBroadcast, 0, BlockRange::single(0, 0));
    on_gpu(0, [&] {
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  bool linear_flags_it = false;
  for (const Finding& f : analyze(t).findings) {
    if (f.kind == FindingKind::UnverifiedTransferConsume) {
      linear_flags_it = true;
    }
  }
  EXPECT_FALSE(linear_flags_it);
  const HbReport r = analyze_hb(t);
  EXPECT_TRUE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
  EXPECT_FALSE(r.race_free());
}

TEST(HbCoverage, CrossIterationVerifyIsContainmentExceeded) {
  TraceRecorder rec;
  rec.enable_sync_capture(true);
  rec.begin_run({"lu", "new-scheme", "full", 2, 64, 32, 2});
  rec.begin_iteration(0);
  on_gpu(0, [&] {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
           BlockRange::single(1, 1));
    rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(1, 1));
  });
  rec.end_iteration(0);
  rec.begin_iteration(1);
  on_gpu(0, [&] {
    rec.verify(CheckPoint::PeriodicSweep, 0, BlockRange::single(1, 1));
  });
  rec.end_iteration(1);
  rec.end_run();
  const HbReport r = analyze_hb(rec.snapshot());
  EXPECT_TRUE(has_coverage_kind(r, FindingKind::ContainmentExceeded));
  EXPECT_FALSE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
}

TEST(HbCoverage, MudZeroReadsNeverOpenWindows) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    on_gpu(0, [&] {
      arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
             BlockRange::single(0, 0));
      // The TMU update part has MUD 0: not a consume.
      rec.compute_read(OpKind::TMU, Part::Update, 0,
                       BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  EXPECT_FALSE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
}

TEST(HbCoverage, RetransferIsRecoveryNotTaint) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    on_gpu(0, [&] {
      arrive(rec, TransferCtx::Retransfer, trace::kHost, 0,
             BlockRange::single(0, 0));
      rec.compute_read(OpKind::TMU, Part::Reference, 0, BlockRange::single(0, 0));
    });
  });
  const HbReport r = analyze_hb(t);
  EXPECT_FALSE(has_coverage_kind(r, FindingKind::UnverifiedTransferConsume));
}

// --- mutation corpus ----------------------------------------------------

/// Fixture: one small clean NewScheme dry run per algorithm, recorded
/// with sync capture via hb_lint_case (which retains the trace).
class HbMutation : public ::testing::TestWithParam<const char*> {};

TEST_P(HbMutation, CleanTraceSeedsAllKindsAndAllAreDetected) {
  LintCase c;
  c.algorithm = GetParam();
  c.scheme = SchemeKind::NewScheme;
  c.ngpu = 2;
  c.n = 128;
  c.nb = 32;
  const HbLintOutcome base = hb_lint_case(c);
  ASSERT_TRUE(base.pass);
  ASSERT_TRUE(base.report.clean());

  const std::vector<Mutation> corpus = seed_mutations(base.trace);
  ASSERT_FALSE(corpus.empty());
  std::set<MutationKind> kinds;
  for (const Mutation& m : corpus) kinds.insert(m.kind);
  EXPECT_EQ(kinds.size(), 3u) << "every mutation kind must contribute";

  for (const Mutation& m : corpus) {
    const trace::Trace mutated = apply_mutation(base.trace, m);
    const HbReport r = analyze_hb(mutated);
    const bool detected = !r.sync_findings.empty() ||
                          r.fatal_coverage_count() > 0;
    EXPECT_TRUE(detected) << to_string(m.kind) << ' ' << m.name << ": "
                          << m.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, HbMutation,
                         ::testing::Values("cholesky", "lu", "qr"));

TEST(HbMutationEdge, TracesWithoutSyncCaptureSeedNothing) {
  TraceRecorder rec;  // capture off
  rec.begin_run({"lu", "new-scheme", "full", 1, 64, 32, 2});
  rec.end_run();
  EXPECT_TRUE(seed_mutations(rec.snapshot()).empty());
}

// --- hb-lint end to end -------------------------------------------------

TEST(HbLint, NewSchemeMatrixPassesWithFullCorpusDetection) {
  std::vector<LintCase> matrix;
  for (const char* algo : {"cholesky", "lu", "qr"}) {
    LintCase c;
    c.algorithm = algo;
    c.scheme = SchemeKind::NewScheme;
    c.ngpu = 2;
    c.n = 128;
    c.nb = 32;
    matrix.push_back(c);
  }
  const HbLintReport r = run_hb_lint(matrix);
  EXPECT_TRUE(r.cases_pass);
  EXPECT_TRUE(r.corpus_pass);
  EXPECT_TRUE(r.pass);
  ASSERT_FALSE(r.mutations.empty());
  for (const MutationOutcome& m : r.mutations) {
    EXPECT_TRUE(m.detected) << m.mutation.name;
    EXPECT_FALSE(m.evidence.empty()) << m.mutation.name;
  }
}

TEST(HbLint, MigrationMatrixProvesCleanAndAttacksMigrationWindows) {
  // The skewed-fleet cases really migrate, every trace proves clean, and
  // the corpus must include the migration verify-drop family — dropping
  // a receiver's AfterMigrate chain has to surface as a finding.
  const HbLintReport r = run_hb_lint(migration_cases(96, 16));
  EXPECT_TRUE(r.cases_pass);
  EXPECT_TRUE(r.corpus_pass);
  EXPECT_TRUE(r.pass);
  bool saw_migration_family = false;
  for (const MutationOutcome& m : r.mutations) {
    EXPECT_TRUE(m.detected) << m.mutation.name;
    if (m.mutation.name.find("-migration") != std::string::npos) {
      saw_migration_family = true;
      EXPECT_EQ(m.mutation.kind, MutationKind::DropVerify);
    }
  }
  EXPECT_TRUE(saw_migration_family);
}

TEST(HbLint, LegacySchemeGapsStillJudgedByProfile) {
  LintCase c;
  c.algorithm = "cholesky";
  c.scheme = SchemeKind::PriorOp;
  c.ngpu = 2;
  c.n = 128;
  c.nb = 32;
  const HbLintOutcome o = hb_lint_case(c);
  // Legacy scheme: documented gaps must appear, race-freedom still holds.
  EXPECT_TRUE(o.pass);
  EXPECT_TRUE(o.report.race_free());
  EXPECT_FALSE(o.report.coverage_findings.empty());
}

TEST(HbLint, ReportSerializesCasesAndCorpus) {
  LintCase c;
  c.algorithm = "lu";
  c.scheme = SchemeKind::NewScheme;
  c.ngpu = 1;
  c.n = 96;
  c.nb = 32;
  const HbLintReport r = run_hb_lint({c});
  std::ostringstream os;
  write_hb_report(r, os);
  const std::string s = os.str();
  // The report header is frozen in its versioned form.
  EXPECT_NE(s.find("{\n  \"tool\": \"ftla-schedule-lint\",\n"
                   "  \"schema_version\": 3,\n  \"mode\": \"hb\",\n"),
            std::string::npos);
  EXPECT_NE(s.find("\"mode\": \"hb\""), std::string::npos);
  EXPECT_NE(s.find("\"mutations\""), std::string::npos);
  EXPECT_NE(s.find("\"corpus_pass\""), std::string::npos);
  EXPECT_NE(s.find("\"sync_findings\""), std::string::npos);
}

// --- serialization format guard ----------------------------------------

/// The legacy JSON surface is frozen: a recorder with sync capture off
/// must serialize without any of the new keys, so existing consumers
/// (and the seed lint report) stay byte-identical.
TEST(HbFormat, CaptureOffSerializationHasNoSyncKeys) {
  TraceRecorder rec;
  rec.begin_run({"lu", "post-op", "full", 2, 64, 32, 2});
  rec.begin_iteration(0);
  rec.link_transfer(0, 1, 1024);
  rec.transfer_arrive(TransferCtx::BroadcastH2D, trace::kHost, 0,
                      BlockRange::single(0, 0));
  rec.verify(CheckPoint::AfterPDBroadcast, 0, BlockRange::single(0, 0));
  rec.end_iteration(0);
  rec.end_run();
  std::ostringstream os;
  trace::write_jsonl(rec.snapshot(), os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("\"stream\""), std::string::npos);
  EXPECT_EQ(s.find("\"sync\""), std::string::npos);
  EXPECT_EQ(s.find("\"edge\""), std::string::npos);
}

TEST(HbFormat, CaptureOnSerializationCarriesSyncMetadata) {
  const auto t = sync_skeleton([](TraceRecorder& rec) {
    const std::uint64_t fork = rec.fresh_sync_id();
    rec.sync_signal(SyncEdgeKind::Fork, fork);
    on_gpu(0, [&] {
      rec.sync_wait(SyncEdgeKind::Fork, fork);
      arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 0,
             BlockRange::single(0, 0));
    });
  });
  std::ostringstream os;
  trace::write_jsonl(t, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"stream\""), std::string::npos);
  EXPECT_NE(s.find("\"edge\":\"fork\""), std::string::npos);
  EXPECT_NE(s.find("\"sync\""), std::string::npos);
}

}  // namespace
}  // namespace ftla::analysis

// Tests for the optional extensions: the §VII.B periodic trailing-matrix
// sweep, multi-fault campaigns, and a randomized single-fault property
// sweep over the full+new configuration.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/campaign.hpp"

namespace ftla::core {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::OpKind;
using fault::Part;
using fault::Timing;

CampaignConfig base_config(Decomp decomp) {
  CampaignConfig cfg;
  cfg.decomp = decomp;
  cfg.n = 96;
  cfg.opts.nb = 16;
  cfg.opts.ngpu = 2;
  cfg.opts.checksum = ChecksumKind::Full;
  cfg.opts.scheme = SchemeKind::NewScheme;
  return cfg;
}

TEST(PeriodicTrailingCheck, ErrorFreeRunsStayCleanAndCostMore) {
  auto cfg = base_config(Decomp::Lu);
  Campaign plain(cfg);
  cfg.opts.periodic_trailing_check = 2;
  Campaign periodic(cfg);

  const auto& a = plain.reference();
  const auto& b = periodic.reference();
  EXPECT_EQ(a.stats.errors_detected, 0u);
  EXPECT_EQ(b.stats.errors_detected, 0u);
  // The sweep verifies strictly more blocks.
  EXPECT_GT(b.stats.blocks_verified, a.stats.blocks_verified);
}

TEST(PeriodicTrailingCheck, CatchesTrailingDamageEarly) {
  // An undetected trailing corruption (0D computation error) is normally
  // caught only when the block is consumed; the periodic sweep finds and
  // repairs it within the configured interval.
  auto cfg = base_config(Decomp::Lu);
  cfg.opts.periodic_trailing_check = 1;
  Campaign campaign(cfg);

  FaultSpec spec;
  spec.type = FaultType::Computation;
  spec.site = {1, OpKind::TMU};
  spec.target_br = 4;
  spec.target_bc = 5;
  const auto result = campaign.run(spec);
  EXPECT_EQ(result.outcome, Outcome::CorrectedAbft) << result.summary();
}

TEST(PeriodicTrailingCheck, WorksForAllDecompositions) {
  for (Decomp decomp : {Decomp::Cholesky, Decomp::Lu, Decomp::Qr}) {
    auto cfg = base_config(decomp);
    cfg.opts.periodic_trailing_check = 2;
    Campaign campaign(cfg);
    EXPECT_TRUE(campaign.reference().ok()) << to_string(decomp);
    EXPECT_EQ(campaign.reference().stats.errors_detected, 0u) << to_string(decomp);
  }
}

TEST(MultiFault, TwoFaultsInDistinctBlocksBothCorrected) {
  Campaign campaign(base_config(Decomp::Lu));

  FaultSpec first;
  first.type = FaultType::Computation;
  first.site = {1, OpKind::TMU};
  first.target_br = 2;
  first.target_bc = 3;

  FaultSpec second;
  second.type = FaultType::MemoryDram;
  second.timing = Timing::BetweenOps;
  second.site = {2, OpKind::TMU};
  second.part = Part::Update;
  second.target_br = 4;
  second.target_bc = 3;
  second.seed = 77;

  const auto result = campaign.run(std::vector<FaultSpec>{first, second});
  EXPECT_TRUE(result.outcome == Outcome::CorrectedAbft ||
              result.outcome == Outcome::CorrectedRestart)
      << result.summary();
  EXPECT_EQ(result.injections.size(), 2u);
}

TEST(MultiFault, FaultsInDifferentIterations) {
  Campaign campaign(base_config(Decomp::Cholesky));

  FaultSpec first;
  first.type = FaultType::Computation;
  first.site = {0, OpKind::PU};
  // Cholesky's PU updates the whole sub-diagonal panel at once; the hook
  // identifies that region by its leading block (k+1, k).
  first.target_br = 1;
  first.target_bc = 0;

  FaultSpec second;
  second.type = FaultType::Computation;
  second.site = {2, OpKind::TMU};
  second.target_br = 4;
  second.target_bc = 3;
  second.seed = 13;

  const auto result = campaign.run(std::vector<FaultSpec>{first, second});
  EXPECT_TRUE(result.outcome == Outcome::CorrectedAbft ||
              result.outcome == Outcome::CorrectedRestart)
      << result.summary();
}

// Randomized property: any single fault drawn from the supported grid is
// absorbed by the full+new configuration — either transparently fixed or
// repaired via local restart; never a silently wrong result.
TEST(RandomizedSweep, FullNewNeverProducesWrongResult) {
  Campaign campaign(base_config(Decomp::Lu));
  Xoshiro256 rng(20260707);
  const index_t b = 6;

  int triggered = 0;
  for (int trial = 0; trial < 60; ++trial) {
    FaultSpec spec;
    const int type = static_cast<int>(rng.bounded(4));
    spec.type = static_cast<FaultType>(type);
    const int op = static_cast<int>(rng.bounded(3));
    spec.site.op = op == 0 ? OpKind::PD : op == 1 ? OpKind::PU : OpKind::TMU;
    spec.site.iteration = rng.index(b - 1);
    const index_t k = spec.site.iteration;
    spec.timing = rng.bounded(2) ? Timing::BetweenOps : Timing::DuringOp;
    spec.seed = rng.next_u64() | 1;

    switch (spec.site.op) {
      case OpKind::PD:
        spec.part = Part::Reference;
        spec.target_br = k + rng.index(b - k);
        spec.target_bc = k;
        break;
      case OpKind::PU:
        spec.part = rng.bounded(2) ? Part::Update : Part::Reference;
        if (spec.part == Part::Update) {
          spec.target_br = k;
          spec.target_bc = k + 1 + rng.index(b - k - 1);
        } else {
          spec.target_br = k;
          spec.target_bc = k;
          // The operation only reads the strictly-lower L11: pin there.
          spec.row = 9;
          spec.col = 2;
        }
        break;
      default:
        spec.part = rng.bounded(2) ? Part::Update : Part::Reference;
        if (spec.part == Part::Update) {
          spec.target_br = k + 1 + rng.index(b - k - 1);
          spec.target_bc = k + 1 + rng.index(b - k - 1);
        } else {
          // Reference: column panel block or row panel block.
          if (rng.bounded(2)) {
            spec.target_br = k + 1 + rng.index(b - k - 1);
            spec.target_bc = k;
          } else {
            spec.target_br = k;
            spec.target_bc = k + 1 + rng.index(b - k - 1);
          }
        }
        break;
    }
    // On-chip faults model transient corruption of operands that are
    // read, not overwritten (see DESIGN.md): restrict them to reference
    // parts.
    if (spec.type == FaultType::MemoryOnChip) spec.part = Part::Reference;
    if (spec.type == FaultType::MemoryOnChip &&
        (spec.site.op == OpKind::PD))
      spec.type = FaultType::Computation;

    const auto result = campaign.run(spec);
    if (result.outcome == Outcome::FaultNotTriggered) continue;
    ++triggered;
    EXPECT_NE(result.outcome, Outcome::WrongResult)
        << "trial " << trial << ": " << result.summary();
  }
  EXPECT_GE(triggered, 25);  // the grid must actually exercise the system
}

}  // namespace
}  // namespace ftla::core

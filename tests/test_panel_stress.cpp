// Concurrency stress for the panel factorization kernels: many threads
// factor private matrices simultaneously. The SIMD dispatch decision
// (detail::cpu_supports_avx2_fma, a function-local static) and the
// packed-GEMM thread_local buffers are the shared state under test —
// run under TSan (sanitizer CI mode) this catches any data race in the
// dispatch-once machinery or the pack-buffer reuse.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lapack/lapack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"

namespace ftla::lapack {
namespace {

constexpr int kThreads = 4;
constexpr int kReps = 6;

TEST(PanelStress, ConcurrentGetrf2CallersAgree) {
  const index_t m = 96, n = 48;
  const MatD a0 = random_general(m, n, 404);
  MatD expect = a0;
  std::vector<index_t> piv_expect;
  ASSERT_EQ(getrf2(expect.view(), piv_expect), 0);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kReps; ++r) {
        MatD a = a0;
        std::vector<index_t> piv;
        if (getrf2(a.view(), piv) != 0 || piv != piv_expect ||
            max_abs_diff(a.const_view(), expect.const_view()) != 0.0) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Identical input on the same code path must give bitwise-identical
  // output regardless of what other threads are doing.
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PanelStress, ConcurrentMixedPanelKinds) {
  // Different factorization kinds in flight at once: LU, Cholesky and QR
  // callers all share the packed-GEMM pack buffers and SIMD dispatch.
  const MatD lu0 = random_general(80, 40, 11);
  const MatD spd0 = random_spd(64, 12);
  const MatD qr0 = random_general(72, 36, 13);

  MatD lu_exp = lu0;
  std::vector<index_t> piv_exp;
  ASSERT_EQ(getrf2(lu_exp.view(), piv_exp), 0);
  MatD spd_exp = spd0;
  ASSERT_EQ(potrf2(spd_exp.view()), 0);
  MatD qr_exp = qr0;
  std::vector<double> tau_exp;
  ASSERT_EQ(geqrf2(qr_exp.view(), tau_exp), 0);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kReps; ++r) {
        switch ((t + r) % 3) {
          case 0: {
            MatD a = lu0;
            std::vector<index_t> piv;
            if (getrf2(a.view(), piv) != 0 ||
                max_abs_diff(a.const_view(), lu_exp.const_view()) != 0.0)
              ++mismatches;
            break;
          }
          case 1: {
            MatD a = spd0;
            if (potrf2(a.view()) != 0 ||
                max_abs_diff(a.const_view(), spd_exp.const_view()) != 0.0)
              ++mismatches;
            break;
          }
          default: {
            MatD a = qr0;
            std::vector<double> tau;
            if (geqrf2(a.view(), tau) != 0 ||
                max_abs_diff(a.const_view(), qr_exp.const_view()) != 0.0)
              ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ftla::lapack

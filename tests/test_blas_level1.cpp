// Level-1 BLAS tests: hand-computed values, stride handling, edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/level1.hpp"

namespace ftla::blas {
namespace {

TEST(Axpy, Basic) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
  EXPECT_DOUBLE_EQ(y[2], 36);
}

TEST(Axpy, ZeroAlphaNoOp) {
  std::vector<double> x{1, 2};
  std::vector<double> y{5, 6};
  axpy(2, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 5);
  EXPECT_DOUBLE_EQ(y[1], 6);
}

TEST(Axpy, Strided) {
  std::vector<double> x{1, 99, 2, 99};
  std::vector<double> y{0, -1, 0, -1};
  axpy(2, 1.0, x.data(), 2, y.data(), 2);
  EXPECT_DOUBLE_EQ(y[0], 1);
  EXPECT_DOUBLE_EQ(y[2], 2);
  EXPECT_DOUBLE_EQ(y[1], -1);  // untouched
}

TEST(Dot, BasicAndStrided) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x.data(), 1, y.data(), 1), 32.0);
  EXPECT_DOUBLE_EQ(dot(2, x.data(), 2, y.data(), 2), 1 * 4 + 3 * 6);
}

TEST(Dot, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(dot(0, nullptr, 1, nullptr, 1), 0.0);
}

TEST(Nrm2, Pythagorean) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), 5.0);
}

TEST(Nrm2, AvoidsOverflow) {
  // Naive sum of squares would overflow to inf.
  const double big = 1e200;
  std::vector<double> x{big, big};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), big * std::sqrt(2.0));
  EXPECT_TRUE(std::isfinite(nrm2(2, x.data(), 1)));
}

TEST(Nrm2, AvoidsUnderflow) {
  const double tiny = 1e-200;
  std::vector<double> x{tiny, tiny};
  EXPECT_GT(nrm2(2, x.data(), 1), 0.0);
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), tiny * std::sqrt(2.0));
}

TEST(Nrm2, ZeroVector) {
  std::vector<double> x{0, 0, 0};
  EXPECT_DOUBLE_EQ(nrm2(3, x.data(), 1), 0.0);
}

TEST(Scal, ScalesInPlace) {
  std::vector<double> x{1, -2, 3};
  scal(3, -2.0, x.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], -2);
  EXPECT_DOUBLE_EQ(x[1], 4);
  EXPECT_DOUBLE_EQ(x[2], -6);
}

TEST(Iamax, FindsLargestMagnitude) {
  std::vector<double> x{1, -7, 3, 7};
  EXPECT_EQ(iamax(4, x.data(), 1), 1);  // first occurrence of |7|
  EXPECT_EQ(iamax(0, x.data(), 1), -1);
}

TEST(Iamax, Strided) {
  std::vector<double> x{1, 100, -5, 100};
  EXPECT_EQ(iamax(2, x.data(), 2), 1);  // elements {1, -5}
}

TEST(Swap, ExchangesContents) {
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4};
  swap(2, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 2);
}

TEST(Copy, Strided) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(2, 0.0);
  copy(2, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1);
  EXPECT_DOUBLE_EQ(y[1], 3);
}

TEST(Asum, SumsAbsoluteValues) {
  std::vector<double> x{-1, 2, -3};
  EXPECT_DOUBLE_EQ(asum(3, x.data(), 1), 6.0);
}

}  // namespace
}  // namespace ftla::blas

// Level-1 BLAS tests: hand-computed values, stride handling, edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/level1.hpp"

namespace ftla::blas {
namespace {

TEST(Axpy, Basic) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
  EXPECT_DOUBLE_EQ(y[2], 36);
}

TEST(Axpy, ZeroAlphaNoOp) {
  std::vector<double> x{1, 2};
  std::vector<double> y{5, 6};
  axpy(2, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 5);
  EXPECT_DOUBLE_EQ(y[1], 6);
}

TEST(Axpy, Strided) {
  std::vector<double> x{1, 99, 2, 99};
  std::vector<double> y{0, -1, 0, -1};
  axpy(2, 1.0, x.data(), 2, y.data(), 2);
  EXPECT_DOUBLE_EQ(y[0], 1);
  EXPECT_DOUBLE_EQ(y[2], 2);
  EXPECT_DOUBLE_EQ(y[1], -1);  // untouched
}

TEST(Dot, BasicAndStrided) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x.data(), 1, y.data(), 1), 32.0);
  EXPECT_DOUBLE_EQ(dot(2, x.data(), 2, y.data(), 2), 1 * 4 + 3 * 6);
}

TEST(Dot, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(dot(0, nullptr, 1, nullptr, 1), 0.0);
}

TEST(Nrm2, Pythagorean) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), 5.0);
}

TEST(Nrm2, AvoidsOverflow) {
  // Naive sum of squares would overflow to inf.
  const double big = 1e200;
  std::vector<double> x{big, big};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), big * std::sqrt(2.0));
  EXPECT_TRUE(std::isfinite(nrm2(2, x.data(), 1)));
}

TEST(Nrm2, AvoidsUnderflow) {
  const double tiny = 1e-200;
  std::vector<double> x{tiny, tiny};
  EXPECT_GT(nrm2(2, x.data(), 1), 0.0);
  EXPECT_DOUBLE_EQ(nrm2(2, x.data(), 1), tiny * std::sqrt(2.0));
}

TEST(Nrm2, ZeroVector) {
  std::vector<double> x{0, 0, 0};
  EXPECT_DOUBLE_EQ(nrm2(3, x.data(), 1), 0.0);
}

TEST(Scal, ScalesInPlace) {
  std::vector<double> x{1, -2, 3};
  scal(3, -2.0, x.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], -2);
  EXPECT_DOUBLE_EQ(x[1], 4);
  EXPECT_DOUBLE_EQ(x[2], -6);
}

TEST(Iamax, FindsLargestMagnitude) {
  std::vector<double> x{1, -7, 3, 7};
  EXPECT_EQ(iamax(4, x.data(), 1), 1);  // first occurrence of |7|
  EXPECT_EQ(iamax(0, x.data(), 1), -1);
}

TEST(Iamax, Strided) {
  std::vector<double> x{1, 100, -5, 100};
  EXPECT_EQ(iamax(2, x.data(), 2), 1);  // elements {1, -5}
}

TEST(Swap, ExchangesContents) {
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4};
  swap(2, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 2);
}

TEST(Copy, Strided) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(2, 0.0);
  copy(2, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1);
  EXPECT_DOUBLE_EQ(y[1], 3);
}

TEST(Asum, SumsAbsoluteValues) {
  std::vector<double> x{-1, 2, -3};
  EXPECT_DOUBLE_EQ(asum(3, x.data(), 1), 6.0);
}

// --- Vectorized kernels vs the scalar _seq oracles --------------------
//
// The dispatchers take the SIMD path for unit-stride operands; these
// sweeps pin the vector kernels (including their remainder loops) to the
// retained scalar implementations at lengths that are not multiples of
// the vector width.

std::vector<double> pseudo_random(index_t n, unsigned seed) {
  std::vector<double> v(static_cast<std::size_t>(n));
  unsigned s = seed * 2654435761u + 1u;
  for (auto& e : v) {
    s = s * 1664525u + 1013904223u;
    e = static_cast<double>(static_cast<int>(s >> 8) % 2001 - 1000) / 500.0;
  }
  return v;
}

TEST(VectorOracle, AxpyDotScalMatchSeq) {
  for (index_t n : {1, 3, 4, 7, 16, 31, 128, 1000, 1027}) {
    const auto x = pseudo_random(n, static_cast<unsigned>(n));
    auto y = pseudo_random(n, static_cast<unsigned>(n) + 7);
    auto y_ref = y;
    axpy(n, 1.7, x.data(), 1, y.data(), 1);
    axpy_seq(n, 1.7, x.data(), 1, y_ref.data(), 1);
    // The AVX2 kernel fuses multiply+add (one rounding); the scalar oracle
    // rounds twice, so results agree to a ulp, not bit-for-bit.
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-14) << "axpy n=" << n;

    // dot reassociates the sum in the SIMD lanes: compare within a few ulps
    // of the accumulated magnitude, not bit-for-bit.
    EXPECT_NEAR(dot(n, x.data(), 1, y.data(), 1), dot_seq(n, x.data(), 1, y.data(), 1),
                1e-12 * static_cast<double>(n))
        << "dot n=" << n;
    EXPECT_NEAR(nrm2(n, x.data(), 1), nrm2_seq(n, x.data(), 1), 1e-13 * static_cast<double>(n))
        << "nrm2 n=" << n;

    auto z = x;
    auto z_ref = x;
    scal(n, -0.3, z.data(), 1);
    scal_seq(n, -0.3, z_ref.data(), 1);
    for (index_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(z[i], z_ref[i]) << "scal n=" << n;
  }
}

TEST(Iamax, MatchesSeqOnRandomLengths) {
  for (index_t n : {1, 2, 5, 16, 63, 256, 1027}) {
    auto x = pseudo_random(n, 42u + static_cast<unsigned>(n));
    EXPECT_EQ(iamax(n, x.data(), 1), iamax_seq(n, x.data(), 1)) << "n=" << n;
    // Plant the max at every remainder-sensitive position.
    for (index_t pos : {index_t{0}, n / 2, n - 1}) {
      auto y = x;
      y[pos] = -9.5;
      EXPECT_EQ(iamax(n, y.data(), 1), pos) << "n=" << n << " pos=" << pos;
      EXPECT_EQ(iamax(n, y.data(), 1), iamax_seq(n, y.data(), 1));
    }
  }
}

TEST(Iamax, TieResolvesToFirstOccurrence) {
  // Duplicated max magnitude with mixed signs, straddling vector lanes.
  std::vector<double> x(37, 0.25);
  x[9] = -4.0;
  x[10] = 4.0;
  x[33] = 4.0;
  EXPECT_EQ(iamax(37, x.data(), 1), 9);
  EXPECT_EQ(iamax(37, x.data(), 1), iamax_seq(37, x.data(), 1));
}

TEST(Iamax, NanNeverWins) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x{1.0, nan, 3.0, nan, -2.0};
  EXPECT_EQ(iamax(5, x.data(), 1), 2);
  EXPECT_EQ(iamax(5, x.data(), 1), iamax_seq(5, x.data(), 1));
}

TEST(Iamax, NanHeadPoisonsLikeOracle) {
  // The scalar oracle seeds its running max with |x[0]|; a NaN there makes
  // every later comparison false, so it returns 0. The SIMD kernel must
  // reproduce that, not "skip" the NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x{nan, 5.0, 2.0, 7.0};
  EXPECT_EQ(iamax_seq(4, x.data(), 1), 0);
  EXPECT_EQ(iamax(4, x.data(), 1), 0);
}

TEST(Iamax, AllZerosReturnsFirst) {
  std::vector<double> x(21, 0.0);
  EXPECT_EQ(iamax(21, x.data(), 1), 0);
  EXPECT_EQ(iamax(21, x.data(), 1), iamax_seq(21, x.data(), 1));
}

TEST(Iamax, MaxInScalarRemainderTail) {
  std::vector<double> x(1027, 0.5);
  x[1025] = -2.0;  // 1027 = 256 * 4 + 3: index 1025 lives in the scalar tail
  EXPECT_EQ(iamax(1027, x.data(), 1), 1025);
}

}  // namespace
}  // namespace ftla::blas

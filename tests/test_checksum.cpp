// Tests for the checksum module: encoder equivalence across all
// implementations, block storage, verification, diagnosis, correction.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "blas/blas.hpp"
#include "checksum/block_checksums.hpp"
#include "checksum/correct.hpp"
#include "checksum/verify.hpp"
#include "fault/bitflip.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace ftla::checksum {
namespace {

Tolerance test_tol(index_t n) {
  Tolerance t;
  t.context = static_cast<double>(n);
  return t;
}

TEST(Encode, HandComputedColumnChecksums) {
  MatD a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = -1;
  a(1, 1) = 0;
  a(2, 1) = 1;
  MatD cs(2, 2);
  encode_col(a.const_view(), cs.view(), Encoder::FusedTiled);
  EXPECT_DOUBLE_EQ(cs(0, 0), 6.0);                      // 1+2+3
  EXPECT_DOUBLE_EQ(cs(1, 0), 1 * 1 + 2 * 2 + 3 * 3);    // 14
  EXPECT_DOUBLE_EQ(cs(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cs(1, 1), -1 + 0 + 3);               // 2
}

TEST(Encode, HandComputedRowChecksums) {
  MatD a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  MatD rs(2, 2);
  encode_row(a.const_view(), rs.view(), Encoder::FusedTiled);
  EXPECT_DOUBLE_EQ(rs(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(rs(0, 1), 1 * 1 + 2 * 2 + 3 * 3);  // 14
  EXPECT_DOUBLE_EQ(rs(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(rs(1, 1), 4 + 10 + 18);            // 32
}

using EncParam = std::tuple<int, int, int>;  // h, w, encoder

class EncoderEquivalence : public ::testing::TestWithParam<EncParam> {};

TEST_P(EncoderEquivalence, MatchesNaiveGemm) {
  const auto [h, w, enc_i] = GetParam();
  const auto enc = static_cast<Encoder>(enc_i);
  const MatD a = random_general(h, w, static_cast<std::uint64_t>(h * 131 + w));

  MatD ref_c(2, w);
  MatD got_c(2, w);
  encode_col(a.const_view(), ref_c.view(), Encoder::NaiveGemm);
  encode_col(a.const_view(), got_c.view(), enc);
  EXPECT_LT(max_abs_diff(ref_c.const_view(), got_c.const_view()),
            1e-11 * static_cast<double>(h * h));

  MatD ref_r(h, 2);
  MatD got_r(h, 2);
  encode_row(a.const_view(), ref_r.view(), Encoder::NaiveGemm);
  encode_row(a.const_view(), got_r.view(), enc);
  EXPECT_LT(max_abs_diff(ref_r.const_view(), got_r.const_view()),
            1e-11 * static_cast<double>(w * w));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndShapes, EncoderEquivalence,
    ::testing::Combine(::testing::Values(1, 3, 4, 7, 64, 129, 256),
                       ::testing::Values(1, 2, 5, 64, 100),
                       ::testing::Values(static_cast<int>(Encoder::FusedTiled),
                                         static_cast<int>(Encoder::FusedNoPrefetch),
                                         static_cast<int>(Encoder::TwoPassTiled))));

TEST(BlockChecksums, LayoutAndViews) {
  BlockChecksums cs(8, 12, 4);
  EXPECT_TRUE(cs.has_col());
  EXPECT_TRUE(cs.has_row());
  EXPECT_EQ(cs.col_storage().rows(), 4);   // 2 * 2 block rows
  EXPECT_EQ(cs.col_storage().cols(), 12);
  EXPECT_EQ(cs.row_storage().rows(), 8);
  EXPECT_EQ(cs.row_storage().cols(), 6);   // 2 * 3 block cols
  EXPECT_EQ(cs.col_block(1, 2).rows(), 2);
  EXPECT_EQ(cs.col_block(1, 2).cols(), 4);
  EXPECT_EQ(cs.row_block(0, 1).rows(), 4);
  EXPECT_EQ(cs.row_block(0, 1).cols(), 2);
}

TEST(BlockChecksums, SingleSideSkipsRowStorage) {
  BlockChecksums cs(8, 8, 4, /*with_col=*/true, /*with_row=*/false);
  EXPECT_TRUE(cs.has_col());
  EXPECT_FALSE(cs.has_row());
  EXPECT_THROW((void)cs.row_block(0, 0), FtlaError);
}

TEST(BlockChecksums, EncodeAllMatchesPerBlockEncode) {
  const MatD a = random_general(12, 12, 55);
  BlockChecksums cs(12, 12, 4);
  cs.encode_all(a.const_view());
  for (index_t br = 0; br < 3; ++br) {
    for (index_t bc = 0; bc < 3; ++bc) {
      MatD expect(2, 4);
      encode_col(cs.layout().block_view(a.const_view(), br, bc), expect.view());
      EXPECT_TRUE(approx_equal(cs.col_block(br, bc), expect.const_view(), 1e-12));
    }
  }
}

TEST(BlockChecksums, ColStripSpansBlocks) {
  const MatD a = random_general(8, 12, 56);
  BlockChecksums cs(8, 12, 4);
  cs.encode_all(a.const_view());
  const auto strip = cs.col_strip(1, 1, 3);
  EXPECT_EQ(strip.rows(), 2);
  EXPECT_EQ(strip.cols(), 8);
  EXPECT_EQ(&strip(0, 0), &cs.col_block(1, 1)(0, 0));
}

TEST(Verify, CleanBlockPasses) {
  const MatD a = random_general(16, 16, 60);
  MatD col_cs(2, 16);
  MatD row_cs(16, 2);
  encode_col(a.const_view(), col_cs.view());
  encode_row(a.const_view(), row_cs.view());
  const auto res =
      verify_full(a.const_view(), col_cs.const_view(), row_cs.const_view(), test_tol(16));
  EXPECT_TRUE(res.clean());
}

TEST(Verify, DetectsSingleCorruption) {
  MatD a = random_general(16, 16, 61);
  MatD col_cs(2, 16);
  encode_col(a.const_view(), col_cs.view());

  Xoshiro256 rng(5);
  a(7, 3) = fault::flip_multi_significant(a(7, 3), rng);

  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(16));
  ASSERT_EQ(res.col_deltas.size(), 1u);
  EXPECT_EQ(res.col_deltas.front().col, 3);

  const auto diag = diagnose_cols(res.col_deltas, 16);
  EXPECT_EQ(diag.pattern, ErrorPattern::Single);
  EXPECT_EQ(diag.row, 7);
  EXPECT_EQ(diag.col, 3);
}

TEST(Verify, LocateWorksForEveryPosition) {
  // Property: δ2/δ1 recovers the exact element for any coordinate.
  const index_t nb = 8;
  for (index_t r = 0; r < nb; ++r) {
    for (index_t c = 0; c < nb; ++c) {
      MatD a = random_general(nb, nb, static_cast<std::uint64_t>(r * nb + c + 1));
      MatD col_cs(2, nb);
      encode_col(a.const_view(), col_cs.view());
      a(r, c) += 1.5;
      const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(nb));
      const auto diag = diagnose_cols(res.col_deltas, nb);
      ASSERT_EQ(diag.pattern, ErrorPattern::Single) << r << "," << c;
      EXPECT_EQ(diag.row, r);
      EXPECT_EQ(diag.col, c);
    }
  }
}

TEST(Verify, RowChecksumDetectsAndLocates) {
  MatD a = random_general(10, 12, 62);
  MatD row_cs(10, 2);
  encode_row(a.const_view(), row_cs.view());
  a(4, 9) -= 2.0;
  const auto res = verify_row(a.const_view(), row_cs.const_view(), test_tol(12));
  const auto diag = diagnose_rows(res.row_deltas, 12);
  EXPECT_EQ(diag.pattern, ErrorPattern::Single);
  EXPECT_EQ(diag.row, 4);
  EXPECT_EQ(diag.col, 9);
}

TEST(Diagnose, RowStreakAcrossColumnsIsMultiLocatable) {
  // 1D row propagation: one corrupted element per column, same row.
  MatD a = random_general(8, 8, 63);
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  for (index_t c = 0; c < 8; ++c) a(5, c) += 1.0 + static_cast<double>(c);
  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(8));
  EXPECT_EQ(res.col_deltas.size(), 8u);
  const auto diag = diagnose_cols(res.col_deltas, 8);
  EXPECT_EQ(diag.pattern, ErrorPattern::MultiLocatable);
  EXPECT_EQ(diag.row, 5);
}

TEST(Diagnose, ColumnStreakNeedsOrthogonalChecksum) {
  MatD a = random_general(8, 8, 64);
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  // Multiple corruptions in one column: ratio cannot locate.
  a(1, 4) += 1.0;
  a(6, 4) += 2.0;
  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(8));
  const auto diag = diagnose_cols(res.col_deltas, 8);
  EXPECT_EQ(diag.pattern, ErrorPattern::ColStreak);
  EXPECT_EQ(diag.col, 4);
}

TEST(Diagnose, TwoDWhenMultipleColumnsUnlocatable) {
  MatD a = random_general(8, 8, 65);
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  // Offsets chosen so the per-column δ2/δ1 ratios are non-integral
  // (two same-signed errors can otherwise masquerade as one locatable
  // error at their weighted centroid).
  a(1, 2) += 1.0;
  a(5, 2) += 0.6;   // ratio (2 + 6·0.6)/1.6 = 3.5
  a(0, 6) += 1.0;
  a(3, 6) += 0.35;  // ratio (1 + 4·0.35)/1.35 ≈ 1.78
  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(8));
  EXPECT_EQ(diagnose_cols(res.col_deltas, 8).pattern, ErrorPattern::TwoD);
}

TEST(Diagnose, CancellingStreakCanHideFromOneSideOnly) {
  // Two corruptions in one column summing to zero under weight v1 are
  // still caught by weight v2 (this is why two weights are used).
  MatD a = random_general(8, 8, 66);
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  a(2, 3) += 1.0;
  a(5, 3) -= 1.0;  // v1 delta = 0; v2 delta = (3 - 6) = -3
  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(8));
  ASSERT_EQ(res.col_deltas.size(), 1u);
  EXPECT_NEAR(res.col_deltas.front().d1, 0.0, 1e-10);
  EXPECT_NEAR(res.col_deltas.front().d2, 3.0, 1e-10);
}

TEST(Correct, SingleElementRestoredExactly) {
  MatD a = random_general(16, 16, 70);
  const MatD original(a.const_view());
  MatD col_cs(2, 16);
  encode_col(a.const_view(), col_cs.view());

  Xoshiro256 rng(9);
  a(11, 2) = fault::flip_multi_significant(a(11, 2), rng);

  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(16));
  EXPECT_EQ(correct_from_col_deltas(a.view(), res.col_deltas), 1);
  EXPECT_LT(max_abs_diff(a.const_view(), original.const_view()), 1e-10);
}

TEST(Correct, RowStreakCorrectedColumnByColumn) {
  MatD a = random_general(8, 8, 71);
  const MatD original(a.const_view());
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  for (index_t c = 0; c < 8; ++c) a(3, c) += 0.5 * static_cast<double>(c + 1);

  const auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(8));
  EXPECT_EQ(correct_from_col_deltas(a.view(), res.col_deltas), 8);
  EXPECT_LT(max_abs_diff(a.const_view(), original.const_view()), 1e-10);
}

TEST(Correct, ReconstructColumnFromRowChecksums) {
  MatD a = random_general(8, 8, 72);
  const MatD original(a.const_view());
  MatD row_cs(8, 2);
  encode_row(a.const_view(), row_cs.view());
  // Corrupt the whole column 5 (1D column propagation).
  for (index_t r = 0; r < 8; ++r) a(r, 5) = -1000.0 + static_cast<double>(r);

  reconstruct_column(a.view(), row_cs.const_view(), 5);
  EXPECT_LT(max_abs_diff(a.const_view(), original.const_view()), 1e-10);
}

TEST(Correct, ReconstructRowFromColChecksums) {
  MatD a = random_general(8, 8, 73);
  const MatD original(a.const_view());
  MatD col_cs(2, 8);
  encode_col(a.const_view(), col_cs.view());
  for (index_t c = 0; c < 8; ++c) a(2, c) = 999.0;

  reconstruct_row(a.view(), col_cs.const_view(), 2);
  EXPECT_LT(max_abs_diff(a.const_view(), original.const_view()), 1e-10);
}

TEST(Correct, RoundTripAfterCorrectionVerifiesClean) {
  MatD a = random_general(16, 16, 74);
  MatD col_cs(2, 16);
  encode_col(a.const_view(), col_cs.view());
  a(0, 0) += 3.0;
  auto res = verify_col(a.const_view(), col_cs.const_view(), test_tol(16));
  correct_from_col_deltas(a.view(), res.col_deltas);
  res = verify_col(a.const_view(), col_cs.const_view(), test_tol(16));
  EXPECT_TRUE(res.clean());
}

TEST(Bounds, GammaMonotoneAndSmall) {
  EXPECT_GT(gamma_n(100.0), gamma_n(10.0));
  EXPECT_LT(gamma_n(1e6), 1e-9);
  EXPECT_DOUBLE_EQ(unit_roundoff(), std::ldexp(1.0, -53));
}

TEST(Bounds, TmuBoundCoversActualRoundoff) {
  // After C -= A·B, the recomputed checksum of C must deviate from the
  // maintained one by less than the analytic bound.
  const index_t n = 64;
  const MatD a = random_general(n, n, 80);
  const MatD b = random_general(n, n, 81);
  MatD c = random_general(n, n, 82);
  MatD cs(2, n);
  encode_col(c.const_view(), cs.view());

  // Maintain: cs -= c(A)·B.
  MatD cs_a(2, n);
  encode_col(a.const_view(), cs_a.view());
  ::ftla::blas::gemm(::ftla::blas::Trans::NoTrans, ::ftla::blas::Trans::NoTrans, -1.0, cs_a.const_view(),
             b.const_view(), 1.0, cs.view());
  ::ftla::blas::gemm(::ftla::blas::Trans::NoTrans, ::ftla::blas::Trans::NoTrans, -1.0, a.const_view(),
             b.const_view(), 1.0, c.view());

  MatD recomputed(2, n);
  encode_col(c.const_view(), recomputed.view());
  const double max_dev = max_abs_diff(cs.const_view(), recomputed.const_view());
  EXPECT_LT(max_dev, tmu_col_bound(a.const_view(), b.const_view()));
}

TEST(RatioLocates, RejectsOutOfRangeAndNonIntegral) {
  index_t idx = -1;
  EXPECT_FALSE(ratio_locates(0.0, 5.0, 8, idx));     // zero denominator
  EXPECT_FALSE(ratio_locates(1.0, 4.5, 8, idx));     // non-integral
  EXPECT_FALSE(ratio_locates(1.0, 9.0, 8, idx));     // beyond extent
  EXPECT_FALSE(ratio_locates(1.0, 0.4, 8, idx));     // below 1
  EXPECT_TRUE(ratio_locates(2.0, 8.0, 8, idx));      // ratio 4 → index 3
  EXPECT_EQ(idx, 3);
}

}  // namespace
}  // namespace ftla::checksum

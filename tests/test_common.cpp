// Tests for the common substrate: error handling, RNG determinism,
// thread pool semantics, timers.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace ftla {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    FTLA_CHECK(1 == 2, "one is not two");
    FAIL() << "expected FtlaError";
  } catch (const FtlaError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(FTLA_CHECK(true, "never"));
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, BoundedCoversRangeWithoutOverflow) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.bounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(Rng, BoundedZeroAndOne) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, NormalHasPlausibleMoments) {
  Xoshiro256 rng(2024);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, IndexWithinBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](index_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(3, 4, [&](index_t i) {
    EXPECT_EQ(i, 3);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ChunkedPartitionIsDisjointAndComplete) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for_chunked(0, 257, [&](index_t lo, index_t hi) {
    EXPECT_LT(lo, hi);
    for (index_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](index_t i) {
                          if (i == 57) throw FtlaError("boom");
                        }),
      FtlaError);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().num_threads(), 1u);
}

TEST(Timer, AccumulatesAcrossIntervals) {
  AccumulatingTimer t;
  t.add(0.5);
  t.add(0.25);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.75);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
}

TEST(Timer, WallTimerAdvances) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Timer, ScopedTimerCharges) {
  AccumulatingTimer acc;
  { ScopedTimer guard(acc); }
  EXPECT_GE(acc.total_seconds(), 0.0);
}

}  // namespace
}  // namespace ftla

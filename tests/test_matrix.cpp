// Tests for the matrix module: views, owning matrices, block layout,
// generators, norms, comparisons, CSV round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "matrix/block.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/io.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"

namespace ftla {
namespace {

TEST(MatrixView, IndexingIsColumnMajor) {
  MatD a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(MatrixView, SubBlockSharesStorage) {
  MatD a(4, 4, 0.0);
  auto b = a.block(1, 1, 2, 2);
  b(0, 0) = 9.0;
  EXPECT_EQ(a(1, 1), 9.0);
  EXPECT_EQ(b.ld(), 4);
}

TEST(MatrixView, BlockOutOfRangeThrows) {
  MatD a(4, 4);
  EXPECT_THROW((void)a.view().block(2, 2, 3, 3), FtlaError);
  EXPECT_THROW((void)a.view().block(-1, 0, 1, 1), FtlaError);
}

TEST(MatrixView, AtBoundsChecked) {
  MatD a(2, 2);
  EXPECT_THROW((void)a.view().at(2, 0), FtlaError);
  EXPECT_THROW((void)a.view().at(0, -1), FtlaError);
  EXPECT_NO_THROW((void)a.view().at(1, 1));
}

TEST(MatrixView, CopyViewBetweenStrides) {
  MatD a(4, 4, 1.0);
  MatD b(2, 2, 0.0);
  copy_view(a.block(1, 1, 2, 2), b.view());
  EXPECT_TRUE(approx_equal(a.block(1, 1, 2, 2), b.view(), 0.0));
}

TEST(MatrixView, FillView) {
  MatD a(3, 3, 0.0);
  fill_view(a.block(0, 0, 2, 2), 5.0);
  EXPECT_EQ(a(0, 0), 5.0);
  EXPECT_EQ(a(1, 1), 5.0);
  EXPECT_EQ(a(2, 2), 0.0);
}

TEST(MatrixView, ConstConversion) {
  MatD a(2, 2, 3.0);
  ViewD v = a.view();
  ConstViewD cv = v;  // implicit widening
  EXPECT_EQ(cv(0, 0), 3.0);
}

TEST(Matrix, DeepCopyFromView) {
  MatD a = random_general(5, 4, 1);
  MatD b(a.const_view());
  EXPECT_TRUE(approx_equal(a.view(), b.view(), 0.0));
  b(0, 0) += 1.0;
  EXPECT_NE(a(0, 0), b(0, 0));
}

TEST(BlockLayout, EvenPartition) {
  BlockLayout bl(8, 8, 4);
  EXPECT_EQ(bl.block_rows(), 2);
  EXPECT_EQ(bl.block_cols(), 2);
  EXPECT_EQ(bl.block_height(0), 4);
  EXPECT_EQ(bl.block_height(1), 4);
}

TEST(BlockLayout, RaggedEdges) {
  BlockLayout bl(10, 7, 4);
  EXPECT_EQ(bl.block_rows(), 3);
  EXPECT_EQ(bl.block_cols(), 2);
  EXPECT_EQ(bl.block_height(2), 2);
  EXPECT_EQ(bl.block_width(1), 3);
}

TEST(BlockLayout, BlockOfElement) {
  BlockLayout bl(16, 16, 4);
  EXPECT_EQ(bl.block_of(0, 0), (BlockCoord{0, 0}));
  EXPECT_EQ(bl.block_of(3, 4), (BlockCoord{0, 1}));
  EXPECT_EQ(bl.block_of(15, 15), (BlockCoord{3, 3}));
}

TEST(BlockLayout, BlockViewAddressesCorrectRegion) {
  MatD a(8, 8);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i) a(i, j) = static_cast<double>(i * 8 + j);
  BlockLayout bl(8, 8, 4);
  auto b = bl.block_view(a.view(), 1, 1);
  EXPECT_EQ(b(0, 0), a(4, 4));
  EXPECT_EQ(b.rows(), 4);
}

TEST(Generate, GeneralIsDeterministic) {
  MatD a = random_general(6, 6, 42);
  MatD b = random_general(6, 6, 42);
  EXPECT_TRUE(approx_equal(a.view(), b.view(), 0.0));
  MatD c = random_general(6, 6, 43);
  EXPECT_FALSE(approx_equal(a.view(), c.view(), 0.0));
}

TEST(Generate, SymmetricIsSymmetric) {
  MatD a = random_symmetric(9, 3);
  for (index_t j = 0; j < 9; ++j)
    for (index_t i = 0; i < 9; ++i) EXPECT_EQ(a(i, j), a(j, i));
}

TEST(Generate, SpdIsSymmetricAndDominant) {
  const index_t n = 12;
  MatD a = random_spd(n, 17);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(a(i, j), a(j, i));
  for (index_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (index_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(a(i, j));
    EXPECT_GT(a(i, i), off);  // strict dominance implies SPD
  }
}

TEST(Generate, DiagDominantRows) {
  const index_t n = 10;
  MatD a = random_diag_dominant(n, 5);
  for (index_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (index_t j = 0; j < n; ++j)
      if (j != i) off += std::abs(a(i, j));
    EXPECT_GT(std::abs(a(i, i)), off);
  }
}

TEST(Generate, IdentityIsIdentity) {
  MatD i3 = identity(3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
}

TEST(Generate, ConditionedHasRequestedSpread) {
  // Reflector conjugation preserves singular values, so the Frobenius
  // norm must equal that of the diagonal ladder.
  const index_t n = 16;
  const double cond = 100.0;
  MatD a = random_conditioned(n, cond, 7);
  double expect_f = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    const double s = std::pow(cond, -t);
    expect_f += s * s;
  }
  EXPECT_NEAR(frobenius_norm(a.view()), std::sqrt(expect_f), 1e-10);
}

TEST(Norms, HandComputed) {
  MatD a(2, 2);
  a(0, 0) = 1;
  a(1, 0) = -2;
  a(0, 1) = 3;
  a(1, 1) = -4;
  EXPECT_DOUBLE_EQ(one_norm(a.view()), 7.0);   // col sums: 3, 7
  EXPECT_DOUBLE_EQ(inf_norm(a.view()), 6.0);   // row sums: 4, 6
  EXPECT_DOUBLE_EQ(max_abs(a.view()), 4.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(a.view()), std::sqrt(30.0));
}

TEST(Norms, NormInequalities) {
  MatD a = random_general(20, 20, 11);
  const double n1 = one_norm(a.view());
  const double ninf = inf_norm(a.view());
  const double nf = frobenius_norm(a.view());
  const double nmax = max_abs(a.view());
  EXPECT_LE(nmax, n1);
  EXPECT_LE(nmax, ninf);
  EXPECT_LE(nf, std::sqrt(20.0) * n1 + 1e-12);
}

TEST(Compare, DiffCountAndArgmax) {
  MatD a(3, 3, 0.0);
  MatD b(3, 3, 0.0);
  b(1, 2) = 0.5;
  b(2, 0) = -2.0;
  EXPECT_EQ(count_diff(a.view(), b.view(), 0.1), 2);
  EXPECT_EQ(count_diff(a.view(), b.view(), 1.0), 1);
  const auto c = argmax_abs_diff(a.view(), b.view());
  EXPECT_EQ(c.row, 2);
  EXPECT_EQ(c.col, 0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 2.0);
}

TEST(Io, CsvRoundTrip) {
  MatD a = random_general(7, 5, 33);
  const auto path = std::filesystem::temp_directory_path() / "ftla_io_test.csv";
  save_csv(path.string(), a.view());
  MatD b = load_csv(path.string());
  EXPECT_EQ(b.rows(), 7);
  EXPECT_EQ(b.cols(), 5);
  EXPECT_TRUE(approx_equal(a.view(), b.view(), 0.0));
  std::filesystem::remove(path);
}

TEST(Io, ToStringContainsValues) {
  MatD a(1, 1);
  a(0, 0) = 1.5;
  EXPECT_NE(to_string(a.view()).find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace ftla

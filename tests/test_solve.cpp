// Tests for the solver layer: triangular solves against factorizations,
// ormqr, and the high-level fault-tolerant solve API (including solves
// that transparently absorb injected faults).

#include <gtest/gtest.h>

#include <vector>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "solve/solve.hpp"
#include "solve/triangular.hpp"

namespace ftla::solve {
namespace {

MatD known_rhs(ConstViewD a, const MatD& x_true) {
  MatD b(a.rows(), x_true.cols(), 0.0);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x_true.const_view(), 0.0,
             b.view());
  return b;
}

TEST(Trtrs, SolvesUpperSystemMultiRhs) {
  const index_t n = 12;
  MatD t = random_general(n, n, 1, 0.5, 1.5);
  const MatD x = random_general(n, 3, 2);
  // b = upper(T)·x
  MatD b(n, 3, 0.0);
  for (index_t c = 0; c < 3; ++c)
    for (index_t i = 0; i < n; ++i)
      for (index_t j = i; j < n; ++j) b(i, c) += t(i, j) * x(j, c);
  trtrs(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit, t.const_view(),
        b.view());
  EXPECT_LT(max_abs_diff(b.const_view(), x.const_view()), 1e-10);
}

TEST(Potrs, RecoversKnownSolution) {
  const index_t n = 48;
  const MatD a = random_spd(n, 3);
  const MatD x = random_general(n, 2, 4);
  MatD b = known_rhs(a.const_view(), x);

  MatD l(a.const_view());
  ASSERT_EQ(lapack::potrf(l.view(), 16), 0);
  potrs(l.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.const_view(), x.const_view()), 1e-9);
}

TEST(GetrsNopiv, RecoversKnownSolution) {
  const index_t n = 40;
  const MatD a = random_diag_dominant(n, 5);
  const MatD x = random_general(n, 1, 6);
  MatD b = known_rhs(a.const_view(), x);

  MatD lu(a.const_view());
  ASSERT_EQ(lapack::getrf_nopiv(lu.view(), 8), 0);
  getrs_nopiv(lu.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.const_view(), x.const_view()), 1e-9);
}

TEST(Getrs, PivotedSolveOnGeneralMatrix) {
  const index_t n = 40;
  const MatD a = random_general(n, n, 7);
  const MatD x = random_general(n, 2, 8);
  MatD b = known_rhs(a.const_view(), x);

  MatD lu(a.const_view());
  std::vector<index_t> ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), 8, ipiv), 0);
  getrs(lu.const_view(), ipiv, b.view());
  EXPECT_LT(max_abs_diff(b.const_view(), x.const_view()), 1e-8);
}

TEST(Ormqr, MatchesExplicitQ) {
  const index_t m = 32;
  const index_t nb = 8;
  MatD f = random_general(m, m, 9);
  std::vector<double> tau;
  lapack::geqrf(f.view(), nb, tau);

  const MatD q = lapack::orgqr(f.const_view(), tau, nb);
  const MatD c0 = random_general(m, 3, 10);

  // Qᵀ·C via ormqr vs explicit multiply.
  MatD c1(c0.const_view());
  lapack::ormqr(true, f.const_view(), tau, nb, c1.view());
  MatD expect(m, 3, 0.0);
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, q.const_view(),
             c0.const_view(), 0.0, expect.view());
  EXPECT_LT(max_abs_diff(c1.const_view(), expect.const_view()), 1e-11);

  // Q·(Qᵀ·C) = C.
  lapack::ormqr(false, f.const_view(), tau, nb, c1.view());
  EXPECT_LT(max_abs_diff(c1.const_view(), c0.const_view()), 1e-11);
}

TEST(SolveSpd, ErrorFreeRoundTrip) {
  const index_t n = 96;
  const MatD a = random_spd(n, 11);
  const MatD x = random_general(n, 2, 12);
  const MatD b = known_rhs(a.const_view(), x);

  core::FtOptions opts;
  opts.nb = 16;
  opts.ngpu = 2;
  const auto result = solve_spd(a.const_view(), b.const_view(), opts);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(max_abs_diff(result.x.const_view(), x.const_view()), 1e-8);
  EXPECT_LT(result.residual, 1e-12);
  EXPECT_EQ(result.stats.errors_detected, 0u);
}

TEST(SolveLu, ErrorFreeRoundTrip) {
  const index_t n = 96;
  const MatD a = random_diag_dominant(n, 13);
  const MatD x = random_general(n, 1, 14);
  const MatD b = known_rhs(a.const_view(), x);

  core::FtOptions opts;
  opts.nb = 16;
  const auto result = solve_lu(a.const_view(), b.const_view(), opts);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(max_abs_diff(result.x.const_view(), x.const_view()), 1e-8);
  EXPECT_LT(result.residual, 1e-12);
}

TEST(SolveQr, ErrorFreeRoundTrip) {
  const index_t n = 96;
  const MatD a = random_general(n, n, 15);
  const MatD x = random_general(n, 3, 16);
  const MatD b = known_rhs(a.const_view(), x);

  core::FtOptions opts;
  opts.nb = 16;
  const auto result = solve_qr(a.const_view(), b.const_view(), opts);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(result.residual, 1e-12);
  EXPECT_LT(max_rel_diff(result.x.const_view(), x.const_view()), 1e-7);
}

TEST(SolveLu, AbsorbsInjectedFaultTransparently) {
  const index_t n = 96;
  const MatD a = random_diag_dominant(n, 17);
  const MatD x = random_general(n, 1, 18);
  const MatD b = known_rhs(a.const_view(), x);

  core::FtOptions opts;
  opts.nb = 16;
  opts.ngpu = 2;

  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.type = fault::FaultType::MemoryDram;
  spec.site = {1, fault::OpKind::TMU};
  spec.part = fault::Part::Reference;
  spec.target_br = 2;
  spec.target_bc = 1;
  injector.schedule(spec);

  const auto result = solve_lu(a.const_view(), b.const_view(), opts, &injector);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(injector.all_fired());
  EXPECT_GE(result.stats.corrected_0d + result.stats.corrected_1d, 1u);
  EXPECT_LT(max_abs_diff(result.x.const_view(), x.const_view()), 1e-8);
}

TEST(SolveSpd, ReportsFailureOnIndefiniteInput) {
  const MatD a = random_symmetric(64, 19);
  const MatD b = random_general(64, 1, 20);
  core::FtOptions opts;
  opts.nb = 16;
  const auto result = solve_spd(a.const_view(), b.const_view(), opts);
  EXPECT_FALSE(result.ok);
}

TEST(Solve, ShapeChecks) {
  const MatD a = random_spd(32, 21);
  const MatD b = random_general(16, 1, 22);
  EXPECT_THROW(solve_spd(a.const_view(), b.const_view()), FtlaError);
  const MatD rect = random_general(32, 16, 23);
  EXPECT_THROW(solve_lu(rect.const_view(), b.const_view()), FtlaError);
}

}  // namespace
}  // namespace ftla::solve

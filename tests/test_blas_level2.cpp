// Level-2 BLAS tests against naive references.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "blas/level2.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace ftla::blas {
namespace {

std::vector<double> naive_gemv(Trans trans, double alpha, const MatD& a,
                               const std::vector<double>& x, double beta,
                               std::vector<double> y) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t leny = trans == Trans::NoTrans ? m : n;
  for (index_t i = 0; i < leny; ++i) y[i] *= beta;
  if (trans == Trans::NoTrans) {
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < n; ++j) y[i] += alpha * a(i, j) * x[j];
  } else {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) y[j] += alpha * a(i, j) * x[i];
  }
  return y;
}

TEST(Gemv, MatchesNaiveNoTrans) {
  const MatD a = random_general(7, 5, 1);
  std::vector<double> x{1, -2, 0.5, 3, -1};
  std::vector<double> y{1, 1, 1, 1, 1, 1, 1};
  auto expect = naive_gemv(Trans::NoTrans, 1.5, a, x, 0.5, y);
  gemv(Trans::NoTrans, 1.5, a.const_view(), x.data(), 1, 0.5, y.data(), 1);
  for (index_t i = 0; i < 7; ++i) EXPECT_NEAR(y[i], expect[i], 1e-14);
}

TEST(Gemv, MatchesNaiveTrans) {
  const MatD a = random_general(6, 4, 2);
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y{0, 0, 0, 0};
  auto expect = naive_gemv(Trans::Trans, -2.0, a, x, 0.0, y);
  gemv(Trans::Trans, -2.0, a.const_view(), x.data(), 1, 0.0, y.data(), 1);
  for (index_t j = 0; j < 4; ++j) EXPECT_NEAR(y[j], expect[j], 1e-14);
}

TEST(Ger, Rank1Update) {
  MatD a(3, 2, 1.0);
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5};
  ger(2.0, x.data(), 1, y.data(), 1, a.view());
  EXPECT_DOUBLE_EQ(a(0, 0), 1 + 2 * 1 * 4);
  EXPECT_DOUBLE_EQ(a(2, 1), 1 + 2 * 3 * 5);
}

TEST(Trsv, SolvesLowerSystem) {
  MatD l(3, 3, 0.0);
  l(0, 0) = 2;
  l(1, 0) = 1;
  l(1, 1) = 3;
  l(2, 0) = -1;
  l(2, 1) = 2;
  l(2, 2) = 4;
  // b = L * [1, 2, 3]ᵀ
  std::vector<double> b{2, 7, 15};
  trsv(Uplo::Lower, Trans::NoTrans, Diag::NonUnit, l.const_view(), b.data(), 1);
  EXPECT_NEAR(b[0], 1, 1e-14);
  EXPECT_NEAR(b[1], 2, 1e-14);
  EXPECT_NEAR(b[2], 3, 1e-14);
}

TEST(Trsv, AllVariantsRoundTrip) {
  // x -> multiply by op(A) -> trsv should recover x, for all 8 variants.
  const index_t n = 8;
  MatD a = random_general(n, n, 9, 0.5, 1.5);  // well-conditioned triangles
  for (auto uplo : {Uplo::Lower, Uplo::Upper}) {
    for (auto trans : {Trans::NoTrans, Trans::Trans}) {
      for (auto diag : {Diag::NonUnit, Diag::Unit}) {
        std::vector<double> x(n);
        for (index_t i = 0; i < n; ++i) x[i] = static_cast<double>(i + 1);
        // b = op(T(A)) x computed naively.
        std::vector<double> b(n, 0.0);
        for (index_t i = 0; i < n; ++i) {
          for (index_t j = 0; j < n; ++j) {
            const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
            if (!in_tri) continue;
            double v = (i == j && diag == Diag::Unit) ? 1.0 : a(i, j);
            if (trans == Trans::NoTrans)
              b[i] += v * x[j];
            else
              b[j] += v * x[i];
          }
        }
        trsv(uplo, trans, diag, a.const_view(), b.data(), 1);
        for (index_t i = 0; i < n; ++i)
          EXPECT_NEAR(b[i], x[i], 1e-10)
              << "uplo=" << to_string(uplo) << " trans=" << to_string(trans)
              << " diag=" << to_string(diag) << " i=" << i;
      }
    }
  }
}

TEST(Syr, UpdatesOnlyRequestedTriangle) {
  MatD a(3, 3, 0.0);
  std::vector<double> x{1, 2, 3};
  syr(Uplo::Lower, 1.0, x.data(), 1, a.view());
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 0.0);  // upper untouched
  EXPECT_DOUBLE_EQ(a(2, 2), 9.0);

  MatD b(3, 3, 0.0);
  syr(Uplo::Upper, 2.0, x.data(), 1, b.view());
  EXPECT_DOUBLE_EQ(b(1, 2), 12.0);
  EXPECT_DOUBLE_EQ(b(2, 1), 0.0);
}

// --- Vectorized gemv/ger vs the scalar _seq oracles -------------------
//
// The AVX2 gemv sweeps four columns at a time, so shapes whose row and
// column counts are not multiples of four exercise every remainder path.
// Sub-views of a larger parent verify the kernels honor the leading
// dimension rather than assuming packed storage.

TEST(GemvOracle, MatchesSeqOnOddShapesAndSubViews) {
  const std::vector<std::pair<index_t, index_t>> shapes{{1, 1},   {3, 5},    {17, 13},
                                                        {64, 31}, {129, 66}, {30, 130}};
  for (auto [m, n] : shapes) {
    const MatD a = random_general(m, n, static_cast<unsigned>(m + n));
    const auto xs = random_general(std::max(m, n), 1, static_cast<unsigned>(m));
    for (Trans t : {Trans::NoTrans, Trans::Trans}) {
      const index_t leny = t == Trans::NoTrans ? m : n;
      const index_t lenx = t == Trans::NoTrans ? n : m;
      std::vector<double> y(static_cast<std::size_t>(leny), 0.5);
      auto y_ref = y;
      gemv(t, 1.25, a.const_view(), xs.data(), 1, -0.5, y.data(), 1);
      gemv_seq(t, 1.25, a.const_view(), xs.data(), 1, -0.5, y_ref.data(), 1);
      for (index_t i = 0; i < leny; ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-12 * static_cast<double>(lenx))
            << "m=" << m << " n=" << n << " trans=" << (t == Trans::Trans);
    }

    // Interior sub-view: ld > rows.
    if (m > 2 && n > 2) {
      const MatD parent = random_general(m + 3, n + 2, static_cast<unsigned>(7 * m + n));
      auto av = parent.const_view().block(1, 1, m, n);
      std::vector<double> y(static_cast<std::size_t>(m), 1.0);
      auto y_ref = y;
      gemv(Trans::NoTrans, -2.0, av, xs.data(), 1, 1.0, y.data(), 1);
      gemv_seq(Trans::NoTrans, -2.0, av, xs.data(), 1, 1.0, y_ref.data(), 1);
      for (index_t i = 0; i < m; ++i)
        EXPECT_NEAR(y[i], y_ref[i], 1e-12 * static_cast<double>(n)) << "subview m=" << m;
    }
  }
}

TEST(GemvOracle, StridedOperandsFallBackConsistently) {
  const MatD a = random_general(9, 6, 3);
  std::vector<double> x(12, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 5) - 2.0;
  std::vector<double> y(18, 0.25);
  auto y_ref = y;
  gemv(Trans::NoTrans, 1.0, a.const_view(), x.data(), 2, 2.0, y.data(), 2);
  gemv_seq(Trans::NoTrans, 1.0, a.const_view(), x.data(), 2, 2.0, y_ref.data(), 2);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(y[i], y_ref[i]) << "i=" << i;
}

TEST(GerOracle, MatchesSeqOnOddShapes) {
  const std::vector<std::pair<index_t, index_t>> shapes{{5, 3}, {33, 17}, {62, 130}};
  for (auto [m, n] : shapes) {
    MatD a = random_general(m, n, static_cast<unsigned>(m * 3 + n));
    MatD a_ref = a;
    const auto x = random_general(m, 1, static_cast<unsigned>(n));
    const auto y = random_general(n, 1, static_cast<unsigned>(m + 1));
    ger(-1.5, x.data(), 1, y.data(), 1, a.view());
    ger_seq(-1.5, x.data(), 1, y.data(), 1, a_ref.view());
    // FMA in the vector kernel vs separate mul+add in the oracle: agree
    // to a ulp of the operand scale, not bit-for-bit.
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        EXPECT_NEAR(a(i, j), a_ref(i, j), 1e-14) << "m=" << m << " n=" << n;
  }
}

}  // namespace
}  // namespace ftla::blas

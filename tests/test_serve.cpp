// Serving-runtime tests: queue ordering and backpressure, work
// stealing, fault-aware retry, deadline shedding, cancellation hygiene
// (no leaked device-arena bytes), reference-cache sharing and job-id
// trace tagging.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "core/campaign.hpp"
#include "core/ft_driver.hpp"
#include "core/reference_cache.hpp"
#include "matrix/generate.hpp"
#include "serve/runtime.hpp"
#include "sim/ownership.hpp"
#include "sim/system.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace ftla;
using namespace ftla::serve;
using core::ChecksumKind;
using core::Decomp;
using core::FtOptions;
using core::Outcome;
using core::RunStatus;
using fault::FaultSpec;
using fault::FaultType;
using fault::OpKind;
using fault::OpSite;
using fault::Part;
using fault::Timing;

constexpr index_t kN = 64;
constexpr index_t kNb = 16;

FaultSpec spec_at(FaultType type, OpKind op, index_t iter, index_t br, index_t bc) {
  FaultSpec s;
  s.type = type;
  s.site = OpSite{iter, op};
  s.part = Part::Update;
  s.timing = Timing::DuringOp;
  s.target_br = br;
  s.target_bc = bc;
  s.seed = 12345;
  return s;
}

JobSpec clean_job(Decomp decomp = Decomp::Lu, index_t n = kN) {
  JobSpec spec;
  spec.decomp = decomp;
  spec.n = n;
  spec.opts.nb = kNb;
  spec.opts.ngpu = 0;  // any fleet
  return spec;
}

/// First attempt deterministically ends DetectedUnrecoverable (restart
/// needed, budget 0); the fault is transient, so the retry succeeds.
JobSpec harsh_job() {
  JobSpec spec = clean_job(Decomp::Lu, 96);
  spec.opts.max_local_restarts = 0;
  spec.faults.push_back(spec_at(FaultType::Computation, OpKind::PD, 2, 2, 2));
  return spec;
}

QueuedJob queued(std::uint64_t id, Priority prio, std::uint64_t seq, int fleet) {
  QueuedJob j;
  j.id = id;
  j.priority = prio;
  j.seq = seq;
  j.fleet = fleet;
  j.ready_at = Clock::now();
  return j;
}

// ---------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------

TEST(JobQueue, PriorityThenFifoOrdering) {
  JobQueue q({1}, 8);
  ASSERT_EQ(q.try_push(queued(1, Priority::Batch, 1, 0)), RejectReason::None);
  ASSERT_EQ(q.try_push(queued(2, Priority::Interactive, 2, 0)), RejectReason::None);
  ASSERT_EQ(q.try_push(queued(3, Priority::Normal, 3, 0)), RejectReason::None);
  ASSERT_EQ(q.try_push(queued(4, Priority::Interactive, 4, 0)), RejectReason::None);
  EXPECT_EQ(q.pop(0)->id, 2u);  // highest priority, earliest seq
  EXPECT_EQ(q.pop(0)->id, 4u);
  EXPECT_EQ(q.pop(0)->id, 3u);
  EXPECT_EQ(q.pop(0)->id, 1u);
}

TEST(JobQueue, BackpressureBoundsNewArrivalsButNotRequeues) {
  JobQueue q({1}, 2);
  EXPECT_EQ(q.try_push(queued(1, Priority::Normal, 1, 0)), RejectReason::None);
  EXPECT_EQ(q.try_push(queued(2, Priority::Normal, 2, 0)), RejectReason::None);
  EXPECT_EQ(q.try_push(queued(3, Priority::Normal, 3, 0)), RejectReason::QueueFull);
  // A retry must never bounce: it already holds an admission slot.
  EXPECT_TRUE(q.push_requeue(queued(4, Priority::Normal, 4, 0)));
  EXPECT_EQ(q.size(), 3u);
}

TEST(JobQueue, ClosedQueueRejectsWithShuttingDown) {
  JobQueue q({1}, 4);
  q.close(/*discard=*/false);
  EXPECT_EQ(q.try_push(queued(1, Priority::Normal, 1, 0)), RejectReason::ShuttingDown);
}

TEST(JobQueue, BackoffGatesPopUntilReady) {
  JobQueue q({1}, 4);
  QueuedJob j = queued(1, Priority::Normal, 1, 0);
  const auto t0 = Clock::now();
  j.ready_at = t0 + std::chrono::milliseconds(60);
  ASSERT_EQ(q.try_push(j), RejectReason::None);
  const auto popped = q.pop(0);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1u);
  EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(50));
}

TEST(JobQueue, StealsOnlyFromEqualGpuLanes) {
  JobQueue q({1, 1, 2}, 8);
  // Fleet 1 (1 GPU) steals fleet 0's job.
  ASSERT_EQ(q.try_push(queued(1, Priority::Normal, 1, 0)), RejectReason::None);
  const auto stolen = q.pop(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->id, 1u);
  EXPECT_EQ(q.stolen(), 1u);

  // A job bound to the 2-GPU lane is invisible to 1-GPU fleets: fleet 0
  // keeps waiting past it until its own lane has work.
  ASSERT_EQ(q.try_push(queued(2, Priority::Normal, 2, 2)), RejectReason::None);
  std::atomic<bool> got{false};
  std::uint64_t got_id = 0;
  std::thread waiter([&] {
    const auto j = q.pop(0);
    got_id = j ? j->id : 0;
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(got.load());  // job 2 was not stolen across GPU counts
  ASSERT_EQ(q.try_push(queued(3, Priority::Normal, 3, 0)), RejectReason::None);
  waiter.join();
  EXPECT_EQ(got_id, 3u);
  EXPECT_EQ(q.stolen(), 1u);
  EXPECT_EQ(q.pop(2)->id, 2u);
}

TEST(JobQueue, PopDrainingLastJobWakesForeignGpuWaiter) {
  JobQueue q({1, 2}, 4);
  // A retried job, backoff-gated, sits in the 1-GPU lane. The 2-GPU
  // fleet can never serve it, so after close() its worker parks in an
  // untimed wait — every lane it may serve is empty.
  QueuedJob j = queued(1, Priority::Normal, 1, 0);
  j.ready_at = Clock::now() + std::chrono::milliseconds(40);
  ASSERT_TRUE(q.push_requeue(j));
  q.close(/*discard=*/false);

  std::atomic<bool> foreign_done{false};
  bool foreign_empty = false;
  std::thread foreign([&] {
    const auto popped = q.pop(1);
    foreign_empty = !popped.has_value();
    foreign_done.store(true);
  });

  // Drain the backlog from the compatible fleet. Popping the last job
  // after close() must wake the foreign waiter by itself: no further
  // push or close notification will ever arrive.
  const auto drained = q.pop(0);
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->id, 1u);

  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (!foreign_done.load() && Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const bool woke = foreign_done.load();
  EXPECT_TRUE(woke) << "pop(1) still blocked after the queue drained";
  if (!woke) {
    // Unstick the stranded waiter so the test fails instead of hanging
    // in join(): a requeue into its own lane always notifies.
    q.push_requeue(queued(2, Priority::Normal, 2, 1));
  }
  foreign.join();
  if (woke) EXPECT_TRUE(foreign_empty);
}

TEST(JobQueue, CloseDiscardReturnsPendingIds) {
  JobQueue q({1}, 4);
  ASSERT_EQ(q.try_push(queued(7, Priority::Normal, 1, 0)), RejectReason::None);
  ASSERT_EQ(q.try_push(queued(8, Priority::Normal, 2, 0)), RejectReason::None);
  const auto dropped = q.close(/*discard=*/true);
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_FALSE(q.pop(0).has_value());
  EXPECT_FALSE(q.push_requeue(queued(9, Priority::Normal, 3, 0)));
}

// ---------------------------------------------------------------------
// ServeRuntime
// ---------------------------------------------------------------------

TEST(ServeRuntime, CompletesCleanJobsAcrossFleets) {
  ServeConfig config;
  config.fleet_ngpu = {1, 2};
  ServeRuntime runtime(config);
  std::vector<std::uint64_t> ids;
  constexpr Decomp kDecomps[] = {Decomp::Lu, Decomp::Cholesky, Decomp::Qr};
  for (int i = 0; i < 6; ++i) {
    const auto adm = runtime.submit(clean_job(kDecomps[i % 3]));
    ASSERT_TRUE(adm.admitted()) << to_string(adm.reject);
    ids.push_back(adm.id);
  }
  for (const auto id : ids) {
    const JobResult r = runtime.wait(id);
    EXPECT_EQ(r.state, JobState::Completed) << r.error;
    EXPECT_EQ(r.attempts, 1);
    EXPECT_GE(r.fleet, 0);
  }
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().completed(), 6u);
  EXPECT_EQ(runtime.metrics().failed(), 0u);
}

TEST(ServeRuntime, AdmissionRejectsInvalidAndUnplaceableJobs) {
  ServeConfig config;
  config.fleet_ngpu = {1, 2};
  ServeRuntime runtime(config);

  JobSpec bad_size = clean_job();
  bad_size.n = 50;  // not a multiple of nb
  EXPECT_EQ(runtime.submit(bad_size).reject, RejectReason::InvalidSize);

  JobSpec no_fleet = clean_job();
  no_fleet.opts.ngpu = 4;  // no fleet has 4 GPUs
  EXPECT_EQ(runtime.submit(no_fleet).reject, RejectReason::NoCapableFleet);

  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.submit(clean_job()).reject, RejectReason::ShuttingDown);
  EXPECT_EQ(runtime.metrics().rejected(), 3u);
}

TEST(ServeRuntime, BackpressureRejectsWhenQueueFull) {
  ServeConfig config;
  config.fleet_ngpu = {1};
  config.queue_capacity = 2;
  ServeRuntime runtime(config);
  // Occupy the single worker with a larger job, then fill the queue.
  const auto running = runtime.submit(clean_job(Decomp::Lu, 128));
  ASSERT_TRUE(running.admitted());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto q1 = runtime.submit(clean_job());
  const auto q2 = runtime.submit(clean_job());
  ASSERT_TRUE(q1.admitted());
  ASSERT_TRUE(q2.admitted());
  const auto overflow = runtime.submit(clean_job());
  EXPECT_EQ(overflow.reject, RejectReason::QueueFull);
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().completed(), 3u);
  EXPECT_EQ(runtime.metrics().rejected(), 1u);
}

TEST(ServeRuntime, RetriesDetectedUnrecoverableWithBackoff) {
  ServeConfig config;
  config.fleet_ngpu = {2};
  config.max_retries = 3;
  config.backoff_base_seconds = 0.02;
  ServeRuntime runtime(config);
  const auto adm = runtime.submit(harsh_job());
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Completed) << r.error;
  EXPECT_EQ(r.attempts, 2);  // DetectedUnrecoverable once, clean retry
  EXPECT_GE(r.backoff_seconds, 0.015);
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().retries(), 1u);
  EXPECT_EQ(runtime.metrics().outcome_count(Outcome::DetectedUnrecoverable), 0u);
}

TEST(ServeRuntime, BackoffLedgerIsExactlyTheInjectedDelays) {
  ServeConfig config;
  config.fleet_ngpu = {2};
  config.max_retries = 2;
  config.backoff_base_seconds = 0.01;
  ServeRuntime runtime(config);

  // No retries: exactly zero backoff, however long the job queued.
  const auto clean = runtime.submit(clean_job(Decomp::Cholesky, 96));
  ASSERT_TRUE(clean.admitted());
  const JobResult rc = runtime.wait(clean.id);
  EXPECT_EQ(rc.state, JobState::Completed) << rc.error;
  EXPECT_EQ(rc.backoff_seconds, 0.0);

  // Two retries: the ledger is the sum of the injected delays (base,
  // then 2·base) — not a timestamp difference re-derived at dequeue,
  // which drifts with duration_cast rounding and early pops.
  JobSpec spec = harsh_job();
  spec.persistent_faults = true;
  const auto adm = runtime.submit(spec);
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Failed);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_DOUBLE_EQ(r.backoff_seconds, 0.01 + 0.02);
  runtime.shutdown(/*drain=*/true);
}

TEST(ServeRuntime, ExhaustedRetryBudgetFailsTheJob) {
  ServeConfig config;
  config.fleet_ngpu = {2};
  config.max_retries = 1;
  config.backoff_base_seconds = 0.001;
  ServeRuntime runtime(config);
  JobSpec spec = harsh_job();
  spec.persistent_faults = true;  // the fault strikes every attempt
  const auto adm = runtime.submit(spec);
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Failed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.outcome, Outcome::DetectedUnrecoverable);
  EXPECT_NE(r.error.find("retry budget"), std::string::npos) << r.error;
  runtime.shutdown(/*drain=*/true);
}

TEST(ServeRuntime, WrongResultIsAHardErrorNeverRetried) {
  ServeConfig config;
  config.fleet_ngpu = {2};
  ServeRuntime runtime(config);
  JobSpec spec = clean_job(Decomp::Lu, 96);
  spec.opts.checksum = ChecksumKind::None;  // unprotected baseline
  spec.faults.push_back(spec_at(FaultType::Computation, OpKind::TMU, 1, 2, 3));
  const auto adm = runtime.submit(spec);
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Failed);
  EXPECT_EQ(r.outcome, Outcome::WrongResult);
  EXPECT_EQ(r.attempts, 1);  // no retry: the corruption was undetected
  EXPECT_NE(r.error.find("wrong result"), std::string::npos) << r.error;
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().outcome_count(Outcome::WrongResult), 1u);
}

TEST(ServeRuntime, StrictDeadlineShedsQueuedJob) {
  ServeConfig config;
  config.fleet_ngpu = {1};
  // A zero budget means the deadline has already expired by the time the
  // worker dequeues the job, making the shed decision deterministic even
  // on fast machines where the blocker finishes quickly.
  config.strict_deadline_seconds = 0.0;
  ServeRuntime runtime(config);
  const auto blocker = runtime.submit(clean_job(Decomp::Lu, 128));
  ASSERT_TRUE(blocker.admitted());
  JobSpec urgent = clean_job();
  urgent.deadline = DeadlineClass::Strict;
  const auto adm = runtime.submit(urgent);
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Shed);
  EXPECT_EQ(r.outcome, Outcome::Aborted);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().shed(), 1u);
}

TEST(ServeRuntime, ShutdownDiscardDropsQueuedJobs) {
  ServeConfig config;
  config.fleet_ngpu = {1};
  ServeRuntime runtime(config);
  const auto running = runtime.submit(clean_job(Decomp::Lu, 128));
  const auto queued1 = runtime.submit(clean_job());
  const auto queued2 = runtime.submit(clean_job());
  ASSERT_TRUE(running.admitted() && queued1.admitted() && queued2.admitted());
  runtime.shutdown(/*drain=*/false);
  for (const auto id : {queued1.id, queued2.id}) {
    const JobResult r = runtime.wait(id);
    EXPECT_EQ(r.state, JobState::Shed);
    EXPECT_EQ(r.outcome, Outcome::Aborted);
  }
  // The running job either finished before the abort flag was polled or
  // was shed mid-run; it must be terminal either way.
  const JobResult r = runtime.wait(running.id);
  EXPECT_TRUE(r.state == JobState::Completed || r.state == JobState::Shed);
}

TEST(ServeRuntime, SameShapeJobsShareOneReference) {
  ServeConfig config;
  config.fleet_ngpu = {1, 1};
  ServeRuntime runtime(config);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto adm = runtime.submit(clean_job());  // identical shape
    ASSERT_TRUE(adm.admitted());
    ids.push_back(adm.id);
  }
  for (const auto id : ids) EXPECT_EQ(runtime.wait(id).state, JobState::Completed);
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.reference_cache().size(), 1u);
  EXPECT_EQ(runtime.reference_cache().misses(), 1u);
  EXPECT_EQ(runtime.reference_cache().hits(), 3u);
}

// ---------------------------------------------------------------------
// Reference cache (direct)
// ---------------------------------------------------------------------

TEST(ReferenceCache, CampaignsWithEqualConfigShareTheBaseline) {
  core::ReferenceCache cache;
  core::CampaignConfig cfg;
  cfg.decomp = Decomp::Lu;
  cfg.n = kN;
  cfg.opts.nb = kNb;
  cfg.opts.ngpu = 2;
  cfg.reference_cache = &cache;
  core::Campaign first(cfg);
  core::Campaign second(cfg);
  const auto* ref1 = &first.reference();
  const auto* ref2 = &second.reference();
  EXPECT_EQ(ref1, ref2);  // same immutable FtOutput instance
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  cfg.opts.ngpu = 1;  // different shape -> different entry
  core::Campaign third(cfg);
  third.reference();
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------
// Scheduler routing: serve jobs ride the dataflow runtime
// ---------------------------------------------------------------------

TEST(SchedulerRouting, DataflowJobsCompleteAcrossFleets) {
  ServeConfig config;
  config.fleet_ngpu = {1, 2};
  ServeRuntime runtime(config);
  std::vector<std::uint64_t> ids;
  constexpr Decomp kDecomps[] = {Decomp::Lu, Decomp::Cholesky, Decomp::Qr};
  for (int i = 0; i < 6; ++i) {
    JobSpec spec = clean_job(kDecomps[i % 3]);
    spec.opts.scheduler = core::SchedulerKind::Dataflow;
    spec.opts.lookahead = 2;
    const auto adm = runtime.submit(spec);
    ASSERT_TRUE(adm.admitted()) << to_string(adm.reject);
    ids.push_back(adm.id);
  }
  for (const auto id : ids) {
    const JobResult r = runtime.wait(id);
    EXPECT_EQ(r.state, JobState::Completed) << r.error;
    EXPECT_EQ(r.attempts, 1);
  }
  runtime.shutdown(/*drain=*/true);
  EXPECT_EQ(runtime.metrics().completed(), 6u);
  EXPECT_EQ(runtime.metrics().failed(), 0u);
}

// A faulted job keeps the fork-join injector path (the dataflow graph is
// submitted before execution, so it cannot host an injector): detection
// and retry semantics must be unchanged by the scheduler request.
TEST(SchedulerRouting, FaultedDataflowJobStillRetriesViaForkJoin) {
  ServeConfig config;
  config.fleet_ngpu = {2};
  config.max_retries = 3;
  config.backoff_base_seconds = 0.001;
  ServeRuntime runtime(config);
  JobSpec spec = harsh_job();
  spec.opts.scheduler = core::SchedulerKind::Dataflow;
  const auto adm = runtime.submit(spec);
  ASSERT_TRUE(adm.admitted());
  const JobResult r = runtime.wait(adm.id);
  EXPECT_EQ(r.state, JobState::Completed) << r.error;
  EXPECT_EQ(r.attempts, 2);  // fault detected once, clean retry succeeds
  runtime.shutdown(/*drain=*/true);
}

// Routing proof: DepRelease sync edges are emitted only by the task
// runtime, so a sync-captured trace of a fault-free campaign shows
// whether the job actually went through the dataflow scheduler.
TEST(SchedulerRouting, FaultFreeCampaignHonoursRequestedScheduler) {
  auto edge_counts = [](core::SchedulerKind sched) {
    core::CampaignConfig cfg;
    cfg.decomp = Decomp::Lu;
    cfg.n = kN;
    cfg.opts.nb = kNb;
    cfg.opts.ngpu = 2;
    cfg.opts.scheduler = sched;
    core::Campaign campaign(cfg);
    trace::TraceRecorder recorder;
    recorder.enable_sync_capture(true);
    core::RunControls controls;
    controls.trace = &recorder;
    const core::CampaignResult result = campaign.run({}, controls);
    EXPECT_EQ(result.stats.status, RunStatus::Success);
    EXPECT_EQ(result.outcome, Outcome::NoImpact);
    std::size_t dep = 0, fork = 0;
    for (const auto& e : recorder.snapshot().events) {
      if (e.edge == sim::SyncEdgeKind::DepRelease) ++dep;
      if (e.edge == sim::SyncEdgeKind::Fork) ++fork;
    }
    return std::make_pair(dep, fork);
  };
  const auto df = edge_counts(core::SchedulerKind::Dataflow);
  EXPECT_GT(df.first, 0u) << "dataflow job never reached the task runtime";
  const auto fj = edge_counts(core::SchedulerKind::ForkJoin);
  EXPECT_EQ(fj.first, 0u);
  EXPECT_GT(fj.second, 0u);
}

// ---------------------------------------------------------------------
// Cancellation hygiene (satellite: no leaked device arena bytes)
// ---------------------------------------------------------------------

TEST(Cancellation, MidRunCancelOnPooledSystemLeaksNothing) {
  sim::HeterogeneousSystem sys(2);
  const auto arenas_before = sim::ownership::num_arenas();
  const auto violations_before = sim::ownership::violation_count();
  ASSERT_EQ(sys.gpu_bytes_allocated(), 0u);

  MatD a = random_diag_dominant(96, 7);
  FtOptions opts;
  opts.nb = kNb;
  opts.ngpu = 2;
  opts.system = &sys;
  int polls = 0;
  opts.cancel = [&polls] { return ++polls > 2; };  // cancel mid-factorization
  const core::FtOutput out = core::ft_lu(a.const_view(), opts);
  EXPECT_EQ(out.stats.status, RunStatus::Cancelled);
  EXPECT_FALSE(out.ok());

  // The borrowed-system scope must have freed every arena byte the
  // partial run allocated, and the ownership checker must be clean.
  EXPECT_EQ(sys.gpu_bytes_allocated(), 0u);
  EXPECT_EQ(sim::ownership::num_arenas(), arenas_before);
  EXPECT_EQ(sim::ownership::violation_count(), violations_before);
}

TEST(Cancellation, DriverOwnedSystemAlsoCancelsCleanly) {
  const auto arenas_before = sim::ownership::num_arenas();
  MatD a = random_spd(kN, 11);
  FtOptions opts;
  opts.nb = kNb;
  opts.ngpu = 1;
  opts.cancel = [] { return true; };  // cancel at the first boundary
  const core::FtOutput out = core::ft_cholesky(a.const_view(), opts);
  EXPECT_EQ(out.stats.status, RunStatus::Cancelled);
  EXPECT_EQ(sim::ownership::num_arenas(), arenas_before);
}

// ---------------------------------------------------------------------
// Trace job tagging (satellite: byte-identical single-job output)
// ---------------------------------------------------------------------

TEST(TraceTagging, UntaggedRunEmitsNoJobKey) {
  trace::TraceRecorder recorder;
  MatD a = random_diag_dominant(kN, 3);
  FtOptions opts;
  opts.nb = kNb;
  opts.ngpu = 1;
  opts.trace = &recorder;
  ASSERT_TRUE(core::ft_lu(a.const_view(), opts).ok());
  std::ostringstream os;
  trace::write_jsonl(recorder.snapshot(), os);
  // Single-job (untagged) traces serialize exactly as before job ids
  // existed: no "job" key anywhere.
  EXPECT_EQ(os.str().find("\"job\""), std::string::npos);
}

TEST(TraceTagging, RuntimeTagsEventsAndFilterSeparatesJobs) {
  ServeConfig config;
  config.fleet_ngpu = {1};
  config.capture_traces = true;
  ServeRuntime runtime(config);
  const auto a = runtime.submit(clean_job(Decomp::Lu));
  const auto b = runtime.submit(clean_job(Decomp::Cholesky));
  ASSERT_TRUE(a.admitted() && b.admitted());
  ASSERT_EQ(runtime.wait(a.id).state, JobState::Completed);
  ASSERT_EQ(runtime.wait(b.id).state, JobState::Completed);
  runtime.shutdown(/*drain=*/true);

  const trace::Trace all = runtime.fleet_trace(0);
  ASSERT_FALSE(all.events.empty());
  const trace::Trace only_a = trace::filter_job(all, a.id);
  const trace::Trace only_b = trace::filter_job(all, b.id);
  ASSERT_FALSE(only_a.events.empty());
  ASSERT_FALSE(only_b.events.empty());
  EXPECT_EQ(only_a.events.size() + only_b.events.size(), all.events.size());
  for (const auto& e : only_a.events) EXPECT_EQ(e.job_id, a.id);
  for (const auto& e : only_b.events) EXPECT_EQ(e.job_id, b.id);

  std::ostringstream os;
  trace::write_jsonl(only_a, os);
  EXPECT_NE(os.str().find("\"job\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

TEST(ServeMetrics, JsonExportCarriesQuantilesAndHistograms) {
  ServeMetrics metrics({1, 2});
  JobResult r;
  r.state = JobState::Completed;
  r.outcome = Outcome::NoImpact;
  r.fleet = 1;
  r.attempts = 2;
  r.queue_wait_seconds = 0.25;
  r.service_seconds = 1.0;
  metrics.record_attempt(1, 1.0, /*stolen=*/true);
  metrics.record_terminal(r);
  const std::string json = metrics.to_json(/*elapsed_seconds=*/2.0);
  for (const char* key :
       {"\"p50_s\"", "\"p95_s\"", "\"p99_s\"", "\"throughput_jobs_per_s\"",
        "\"outcomes\"", "\"rejections\"", "\"fleets\"", "\"stolen\":1",
        "\"retries\":1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(ServeMetrics, QuantilesUseNearestRank) {
  LatencyTrack track;
  for (int i = 1; i <= 100; ++i) track.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(track.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(track.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(track.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(track.mean(), 50.5);
}

TEST(ServeMetrics, QuantileSeesSamplesAddedAfterASort) {
  // quantile() sorts lazily; a record after a read must invalidate the
  // sorted flag or the new sample hides at the back of the vector and
  // every later quantile reads the stale order.
  LatencyTrack track;
  track.add(30.0);
  track.add(10.0);
  track.add(20.0);
  EXPECT_DOUBLE_EQ(track.quantile(1.0), 30.0);  // forces the sort
  track.add(5.0);
  EXPECT_DOUBLE_EQ(track.quantile(0.0), 5.0);
  track.add(40.0);
  EXPECT_DOUBLE_EQ(track.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(track.quantile(0.5), 20.0);
}

}  // namespace

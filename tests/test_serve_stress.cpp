// TSan-targeted stress: many concurrent jobs over several fleets under
// random fault injection, submitted from competing threads. The CI
// thread-sanitizer job runs this via `ctest -L stress`; the assertions
// also hold under the plain Release build.

#include <gtest/gtest.h>

#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "serve/runtime.hpp"

namespace {

using namespace ftla;
using namespace ftla::serve;
using core::Decomp;
using core::Outcome;
using fault::FaultSpec;
using fault::FaultType;
using fault::OpKind;
using fault::OpSite;
using fault::Part;
using fault::Timing;

FaultSpec spec_at(FaultType type, OpKind op, index_t iter, index_t br, index_t bc) {
  FaultSpec s;
  s.type = type;
  s.site = OpSite{iter, op};
  s.part = Part::Update;
  s.timing = Timing::DuringOp;
  s.target_br = br;
  s.target_bc = bc;
  s.seed = 12345;  // battery seed: detection verified for every shape used here
  return s;
}

/// Soft fault the full-checksum new scheme recovers for this decomposition.
FaultSpec soft_fault(Decomp decomp) {
  switch (decomp) {
    case Decomp::Cholesky:
      return spec_at(FaultType::Computation, OpKind::PU, 1, 2, 1);
    case Decomp::Lu: return spec_at(FaultType::Computation, OpKind::PD, 1, 1, 1);
    case Decomp::Qr: return spec_at(FaultType::Computation, OpKind::TMU, 1, 1, 3);
  }
  return {};
}

TEST(ServeStress, ConcurrentJobsOverMultipleFleetsUnderFaults) {
  constexpr int kJobs = 12;  // >= 8 concurrent jobs over >= 2 system instances
  ServeConfig config;
  config.fleet_ngpu = {1, 2};
  config.queue_capacity = kJobs;
  config.max_retries = 4;
  config.backoff_base_seconds = 0.001;
  ServeRuntime runtime(config);

  std::mutex ids_mutex;
  std::vector<std::uint64_t> ids;
  auto submitter = [&](unsigned salt) {
    std::mt19937_64 rng(salt);
    constexpr Decomp kDecomps[] = {Decomp::Lu, Decomp::Cholesky, Decomp::Qr};
    for (int i = 0; i < kJobs / 2; ++i) {
      JobSpec spec;
      spec.decomp = kDecomps[rng() % 3];
      spec.n = 64;
      spec.matrix_seed = 42 + rng() % 4;
      spec.opts.nb = 16;
      spec.opts.ngpu = 0;
      spec.priority = static_cast<Priority>(rng() % 3);
      if (rng() % 2 == 0) spec.faults.push_back(soft_fault(spec.decomp));
      if (i == 0) {
        // One harsh job per submitter: DetectedUnrecoverable first, then
        // retried to success while other jobs keep the fleets busy.
        spec.decomp = Decomp::Lu;
        spec.faults = {spec_at(FaultType::Computation, OpKind::PD, 2, 2, 2)};
        spec.opts.max_local_restarts = 0;
      }
      const auto adm = runtime.submit(spec);
      ASSERT_TRUE(adm.admitted()) << to_string(adm.reject);
      std::lock_guard<std::mutex> lock(ids_mutex);
      ids.push_back(adm.id);
    }
  };
  std::thread t1(submitter, 101);
  std::thread t2(submitter, 202);
  t1.join();
  t2.join();

  for (const auto id : ids) {
    const JobResult r = runtime.wait(id);
    EXPECT_EQ(r.state, JobState::Completed) << "job " << id << ": " << r.error;
  }
  runtime.drain();
  runtime.shutdown(/*drain=*/true);

  const auto& m = runtime.metrics();
  EXPECT_EQ(m.completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(m.outcome_count(Outcome::WrongResult), 0u);
  EXPECT_GE(m.retries(), 2u);  // both harsh jobs retried
  // Same-shape jobs shared baselines instead of recomputing them.
  EXPECT_GT(runtime.reference_cache().hits(), 0u);
}

}  // namespace

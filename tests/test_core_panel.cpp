// Unit tests for the checksummed panel kernels (core/panel_ft).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "checksum/encode.hpp"
#include "blas/blas.hpp"
#include "core/panel_ft.hpp"
#include "lapack/lapack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"

namespace ftla::core {
namespace {

constexpr double kVerifyThreshold = 1e-10;

MatD panel_col_checksums(ConstViewD panel, index_t nb) {
  const index_t nblk = panel.rows() / nb;
  MatD cs(2 * nblk, nb);
  for (index_t i = 0; i < nblk; ++i) {
    checksum::encode_col(panel.block(i * nb, 0, nb, nb), cs.block(2 * i, 0, 2, nb));
  }
  return cs;
}

TEST(EncodeHelpers, UnitLowerMatchesManualSum) {
  MatD a = random_general(4, 4, 1);
  MatD cs(2, 4);
  encode_col_unit_lower(a.const_view(), cs.view());
  // Column 1: unit diag at row 1 (weight 2) + rows 2,3.
  const double expect_s = 1.0 + a(2, 1) + a(3, 1);
  const double expect_t = 2.0 + 3.0 * a(2, 1) + 4.0 * a(3, 1);
  EXPECT_DOUBLE_EQ(cs(0, 1), expect_s);
  EXPECT_DOUBLE_EQ(cs(1, 1), expect_t);
}

TEST(EncodeHelpers, LowerIncludesDiagonal) {
  MatD a = random_general(3, 3, 2);
  MatD cs(2, 3);
  encode_col_lower(a.const_view(), cs.view());
  EXPECT_DOUBLE_EQ(cs(0, 2), a(2, 2));
  EXPECT_DOUBLE_EQ(cs(1, 2), 3.0 * a(2, 2));
  EXPECT_DOUBLE_EQ(cs(0, 0), a(0, 0) + a(1, 0) + a(2, 0));
}

TEST(EncodeHelpers, UpperIncludesDiagonal) {
  MatD a = random_general(3, 3, 3);
  MatD cs(2, 3);
  encode_col_upper(a.const_view(), cs.view());
  EXPECT_DOUBLE_EQ(cs(0, 0), a(0, 0));
  EXPECT_DOUBLE_EQ(cs(0, 2), a(0, 2) + a(1, 2) + a(2, 2));
}

TEST(LuPanelFt, FactorsMatchPlainKernel) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD a = random_diag_dominant(m, 7);
  MatD panel(a.block(0, 0, m, nb));
  MatD plain(panel.const_view());

  MatD cs = panel_col_checksums(panel.const_view(), nb);
  ASSERT_EQ(lu_panel_ft(panel.view(), nb, cs.view()), 0);
  ASSERT_EQ(lapack::getrf2_nopiv(plain.view()), 0);
  EXPECT_LT(max_abs_diff(panel.const_view(), plain.const_view()), 1e-12);
}

TEST(LuPanelFt, CleanVerifyBelowThreshold) {
  const index_t nb = 8;
  const index_t m = 40;
  MatD a = random_diag_dominant(m, 8);
  MatD panel(a.block(0, 0, m, nb));
  MatD cs = panel_col_checksums(panel.const_view(), nb);
  ASSERT_EQ(lu_panel_ft(panel.view(), nb, cs.view()), 0);
  EXPECT_LT(lu_panel_verify(panel.const_view(), nb, cs.const_view(),
                            checksum::Encoder::FusedTiled),
            kVerifyThreshold);
}

TEST(LuPanelFt, DetectsCorruptionInL) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD a = random_diag_dominant(m, 9);
  MatD panel(a.block(0, 0, m, nb));
  MatD cs = panel_col_checksums(panel.const_view(), nb);
  ASSERT_EQ(lu_panel_ft(panel.view(), nb, cs.view()), 0);
  panel(20, 3) += 0.5;  // below-diagonal block → L entry
  EXPECT_GT(lu_panel_verify(panel.const_view(), nb, cs.const_view(),
                            checksum::Encoder::FusedTiled),
            1e-4);
}

TEST(LuPanelFt, DetectsCorruptionInU) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD a = random_diag_dominant(m, 10);
  MatD panel(a.block(0, 0, m, nb));
  MatD cs = panel_col_checksums(panel.const_view(), nb);
  ASSERT_EQ(lu_panel_ft(panel.view(), nb, cs.view()), 0);

  // Corrupting stored U changes the checksum relation c(A)=c(L)·U even
  // though the derived checksums were solved against U — re-derive.
  MatD cs2 = panel_col_checksums(MatD(a.block(0, 0, m, nb)).const_view(), nb);
  panel(2, 5) += 0.5;  // upper part of the diagonal block → U entry
  MatD cs3(cs2.const_view());
  // cs3 still holds c(A); re-solving against the corrupted U gives a
  // different c(L) — so verify must flag.
  ::ftla::blas::trsm(::ftla::blas::Side::Right, ::ftla::blas::Uplo::Upper, ::ftla::blas::Trans::NoTrans,
             ::ftla::blas::Diag::NonUnit, 1.0, panel.block(0, 0, nb, nb).as_const(), cs3.view());
  EXPECT_GT(lu_panel_verify(panel.const_view(), nb, cs3.const_view(),
                            checksum::Encoder::FusedTiled),
            1e-6);
}

TEST(CholDiagFt, FactorsAndVerifiesClean) {
  const index_t nb = 16;
  MatD a = random_spd(nb, 11);
  MatD cs(2, nb);
  checksum::encode_col(a.const_view(), cs.view());
  MatD l(a.const_view());
  ASSERT_EQ(chol_diag_ft(l.view(), cs.view()), 0);

  MatD plain(a.const_view());
  ASSERT_EQ(lapack::potrf2(plain.view()), 0);
  for (index_t j = 0; j < nb; ++j)
    for (index_t i = j; i < nb; ++i) EXPECT_NEAR(l(i, j), plain(i, j), 1e-12);

  EXPECT_LT(chol_diag_verify(l.const_view(), cs.const_view()), kVerifyThreshold);
}

TEST(CholDiagFt, DetectsCorruption) {
  const index_t nb = 16;
  MatD a = random_spd(nb, 12);
  MatD cs(2, nb);
  checksum::encode_col(a.const_view(), cs.view());
  MatD l(a.const_view());
  ASSERT_EQ(chol_diag_ft(l.view(), cs.view()), 0);
  l(10, 4) += 1.0;
  EXPECT_GT(chol_diag_verify(l.const_view(), cs.const_view()), 1e-4);
}

TEST(CholDiagFt, RejectsIndefinite) {
  MatD a = identity(4);
  a(2, 2) = -1.0;
  MatD cs(2, 4);
  checksum::encode_col(a.const_view(), cs.view());
  EXPECT_EQ(chol_diag_ft(a.view(), cs.view()), 3);
}

MatD stack_row_checksums(ConstViewD panel, index_t nb) {
  const index_t nblk = panel.rows() / nb;
  MatD rcs(panel.rows(), 2);
  for (index_t i = 0; i < nblk; ++i) {
    checksum::encode_row(panel.block(i * nb, 0, nb, panel.cols()),
                         rcs.block(i * nb, 0, nb, 2));
  }
  return rcs;
}

TEST(QrPanelFt, FactorsMatchPlainKernel) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD a = random_general(m, nb, 13);
  MatD panel(a.const_view());
  MatD rcs = stack_row_checksums(panel.const_view(), nb);
  std::vector<double> tau;
  std::vector<double> norms2;
  qr_panel_ft(panel.view(), rcs.view(), tau, norms2);

  MatD plain(a.const_view());
  std::vector<double> tau2;
  lapack::geqrf2(plain.view(), tau2);
  EXPECT_LT(max_abs_diff(panel.const_view(), plain.const_view()), 1e-12);
  for (std::size_t i = 0; i < tau.size(); ++i) EXPECT_NEAR(tau[i], tau2[i], 1e-12);
}

TEST(QrPanelFt, CleanVerifyBelowThreshold) {
  const index_t nb = 8;
  const index_t m = 48;
  MatD panel = random_general(m, nb, 14);
  MatD rcs = stack_row_checksums(panel.const_view(), nb);
  std::vector<double> tau;
  std::vector<double> norms2;
  qr_panel_ft(panel.view(), rcs.view(), tau, norms2);
  EXPECT_LT(qr_panel_verify(panel.const_view(), rcs.const_view(), norms2), 1e-9);
}

TEST(QrPanelFt, DetectsCorruptionInR) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD panel = random_general(m, nb, 15);
  MatD rcs = stack_row_checksums(panel.const_view(), nb);
  std::vector<double> tau;
  std::vector<double> norms2;
  qr_panel_ft(panel.view(), rcs.view(), tau, norms2);
  panel(2, 5) += 0.5;  // R entry
  EXPECT_GT(qr_panel_verify(panel.const_view(), rcs.const_view(), norms2), 1e-5);
}

TEST(QrPanelFt, NormCheckCatchesScaledColumn) {
  // A wrong reflector that rescales a column violates norm preservation
  // even when the row-checksum relation of the stored R is repaired.
  const index_t nb = 4;
  const index_t m = 16;
  MatD panel = random_general(m, nb, 16);
  MatD rcs = stack_row_checksums(panel.const_view(), nb);
  std::vector<double> tau;
  std::vector<double> norms2;
  qr_panel_ft(panel.view(), rcs.view(), tau, norms2);
  // Scale R column 2 and patch the maintained row checksums to match —
  // only the norm invariant can catch this.
  for (index_t r = 0; r <= 2; ++r) panel(r, 2) *= 1.5;
  for (index_t r = 0; r <= 2; ++r) {
    double s = 0.0, t = 0.0;
    for (index_t c = r; c < nb; ++c) {
      s += panel(r, c);
      t += static_cast<double>(c + 1) * panel(r, c);
    }
    rcs(r, 0) = s;
    rcs(r, 1) = t;
  }
  EXPECT_GT(qr_panel_verify(panel.const_view(), rcs.const_view(), norms2), 1e-3);
}

TEST(QrPanelFt, VChecksumsMatchStoredVectors) {
  const index_t nb = 8;
  const index_t m = 32;
  MatD panel = random_general(m, nb, 17);
  MatD rcs = stack_row_checksums(panel.const_view(), nb);
  std::vector<double> tau;
  std::vector<double> norms2;
  qr_panel_ft(panel.view(), rcs.view(), tau, norms2);

  MatD vcs(2 * (m / nb), nb);
  encode_v_checksums(panel.const_view(), nb, vcs.view());

  // Block 0 must use the unit-lower convention.
  MatD expect0(2, nb);
  encode_col_unit_lower(panel.block(0, 0, nb, nb), expect0.view());
  EXPECT_TRUE(approx_equal(vcs.block(0, 0, 2, nb), expect0.const_view(), 1e-12));

  // Below-diagonal blocks are plain encodes.
  MatD expect1(2, nb);
  checksum::encode_col(panel.block(nb, 0, nb, nb), expect1.view());
  EXPECT_TRUE(approx_equal(vcs.block(2, 0, 2, nb), expect1.const_view(), 1e-12));
}

}  // namespace
}  // namespace ftla::core

// Tests for the analytic model module: MUD tables, verification counts,
// overhead formulas, and the §X.B probability model.

#include <gtest/gtest.h>

#include "model/mud.hpp"
#include "model/overhead.hpp"
#include "model/probability.hpp"
#include "model/verification_count.hpp"

namespace ftla::model {
namespace {

using core::ChecksumKind;
using core::Decomp;
using core::SchemeKind;

// --- Table IV / V -------------------------------------------------------

TEST(Mud, TableIVEntries) {
  EXPECT_EQ(mud(OpKind::PD, Part::Update), Level::Two);
  EXPECT_EQ(mud(OpKind::PD, Part::Reference), Level::Two);
  EXPECT_EQ(mud(OpKind::PU, Part::Reference), Level::Two);
  EXPECT_EQ(mud(OpKind::PU, Part::Update), Level::One);
  EXPECT_EQ(mud(OpKind::TMU, Part::Reference), Level::One);
  EXPECT_EQ(mud(OpKind::TMU, Part::Update), Level::Zero);
}

TEST(Mud, ComputationErrorsAreStandalone) {
  for (auto op : {OpKind::PD, OpKind::PU, OpKind::TMU}) {
    EXPECT_EQ(propagation(op, Part::Update, FaultType::Computation), Level::Zero);
  }
}

TEST(Mud, MemoryErrorsPropagateWithMud) {
  EXPECT_EQ(propagation(OpKind::TMU, Part::Reference, FaultType::MemoryDram), Level::One);
  EXPECT_EQ(propagation(OpKind::PU, Part::Reference, FaultType::MemoryOnChip), Level::Two);
  EXPECT_EQ(propagation(OpKind::TMU, Part::Update, FaultType::MemoryDram), Level::Zero);
}

TEST(Mud, TolerabilityMatchesTableV) {
  EXPECT_TRUE(tolerable_single_side(Level::Zero));
  EXPECT_FALSE(tolerable_single_side(Level::One));
  EXPECT_TRUE(tolerable_full(Level::One));
  EXPECT_FALSE(tolerable_full(Level::Two));
}

TEST(Mud, Names) {
  EXPECT_STREQ(to_string(Level::Zero), "0D");
  EXPECT_STREQ(to_string(Level::Two), "2D");
}

// --- Table VI -----------------------------------------------------------

TEST(VerificationCount, NewSchemeHasNoQuadraticTerm) {
  // The trailing-matrix term grows as b² for prior/post but not ours.
  const auto prior64 = blocks_per_iteration(SchemeKind::PriorOp, 64).total();
  const auto prior128 = blocks_per_iteration(SchemeKind::PriorOp, 128).total();
  const auto ours64 = blocks_per_iteration(SchemeKind::NewScheme, 64).total();
  const auto ours128 = blocks_per_iteration(SchemeKind::NewScheme, 128).total();
  EXPECT_GT(prior128 / prior64, 3.5);  // ≈ quadratic growth
  EXPECT_LT(ours128 / ours64, 2.1);    // linear growth
}

TEST(VerificationCount, OursIsCheapestAtSmallK) {
  for (index_t b : {8, 32, 128}) {
    const auto prior = blocks_per_iteration(SchemeKind::PriorOp, b).total();
    const auto post = blocks_per_iteration(SchemeKind::PostOp, b).total();
    const auto ours = blocks_per_iteration(SchemeKind::NewScheme, b, 0).total();
    EXPECT_LT(ours, post);
    EXPECT_LT(post, prior);  // prior checks more input than post checks output
  }
}

TEST(VerificationCount, KRepairsAddLinearly) {
  const auto base = blocks_per_iteration(SchemeKind::NewScheme, 16, 0).total();
  const auto with_k = blocks_per_iteration(SchemeKind::NewScheme, 16, 5).total();
  EXPECT_DOUBLE_EQ(with_k - base, 5.0);
}

TEST(VerificationCount, TotalsSumIterations) {
  // b=2: iterations with b=2 and b=1.
  const double expect = blocks_per_iteration(SchemeKind::PostOp, 2).total() +
                        blocks_per_iteration(SchemeKind::PostOp, 1).total();
  EXPECT_DOUBLE_EQ(total_blocks(SchemeKind::PostOp, 64, 32), expect);
}

// --- §IX / Table VII ------------------------------------------------------

TEST(Overhead, EncodeMatchesClosedForms) {
  // Cholesky/LU: 9/n; QR: 9/(2n) (§IX.A.1).
  const index_t n = 10240;
  EXPECT_NEAR(encode_overhead(Decomp::Cholesky, n, 256), 9.0 / n, 1e-12);
  EXPECT_NEAR(encode_overhead(Decomp::Lu, n, 256), 9.0 / n, 1e-12);
  EXPECT_NEAR(encode_overhead(Decomp::Qr, n, 256), 4.5 / n, 1e-12);
}

TEST(Overhead, EncodeIndependentOfBlockSize) {
  EXPECT_NEAR(encode_overhead(Decomp::Lu, 4096, 64), encode_overhead(Decomp::Lu, 4096, 256),
              1e-12);
}

TEST(Overhead, VerificationMatchesClosedForms) {
  const index_t n = 10240;
  EXPECT_NEAR(verification_overhead(Decomp::Cholesky, n, 1), (72.0 + 288.0) / n, 1e-12);
  EXPECT_NEAR(verification_overhead(Decomp::Lu, n, 0), 144.0 / n, 1e-12);
  EXPECT_NEAR(verification_overhead(Decomp::Qr, n, 2), (36.0 + 108.0) / n, 1e-12);
}

TEST(Overhead, TotalVanishesForLargeProblems) {
  // Table VII's message: the overhead tends to a small constant (the
  // 4/NB updating term) as n grows.
  const double at_1k = total_overhead(Decomp::Lu, 1024, 256);
  const double at_64k = total_overhead(Decomp::Lu, 65536, 256);
  EXPECT_LT(at_64k, at_1k);
  EXPECT_NEAR(at_64k, update_overhead(Decomp::Lu, 65536, 256), 0.01);
}

TEST(Overhead, SpaceIs4OverNb) {
  EXPECT_DOUBLE_EQ(space_overhead(256), 4.0 / 256.0);
  EXPECT_DOUBLE_EQ(space_overhead(64), 4.0 / 64.0);
}

// --- §X.B probability model ---------------------------------------------

TEST(Probability, SmallExposureIsLinearInRate) {
  const Rates r;
  OpProfile p;
  p.flops = 1e6;
  // For tiny rate·exposure, P(one error) ≈ exposure · rate.
  EXPECT_NEAR(p_computation_error(r, p), 1e6 * r.comp, 1e-3 * 1e6 * r.comp);
  p.flops = 0.0;
  EXPECT_DOUBLE_EQ(p_computation_error(r, p), 0.0);
}

TEST(Probability, DistributionSumsToOne) {
  const Rates rates;
  for (auto op : {OpKind::PD, OpKind::PU, OpKind::TMU}) {
    const auto profile = lu_profile(op, 8192, 256, 4);
    for (auto cs : {ChecksumKind::SingleSide, ChecksumKind::Full}) {
      for (auto scheme :
           {SchemeKind::PriorOp, SchemeKind::PostOp, SchemeKind::NewScheme}) {
        const auto dist = outcome_distribution(op, cs, scheme, rates, profile);
        EXPECT_NEAR(dist.fault_free + dist.faulty(), 1.0, 1e-12);
        EXPECT_GE(dist.fault_free, 0.99);  // rates are tiny
      }
    }
  }
}

TEST(Probability, FullChecksumShrinksCompleteRestart) {
  // Fig 6-8's message: the full layout converts 1D propagation from
  // complete-restart territory into ABFT-fixable territory.
  const Rates rates;
  const auto profile = lu_profile(OpKind::TMU, 10240, 256, 4);
  const auto single = outcome_distribution(OpKind::TMU, ChecksumKind::SingleSide,
                                           SchemeKind::PostOp, rates, profile);
  const auto full = outcome_distribution(OpKind::TMU, ChecksumKind::Full,
                                         SchemeKind::NewScheme, rates, profile);
  EXPECT_GT(single.complete_restart, full.complete_restart);
  EXPECT_GT(full.abft_fixable, single.abft_fixable);
}

TEST(Probability, PcieResolutionDependsOnScheme) {
  EXPECT_EQ(resolve(FaultType::Pcie, Timing::DuringOp, OpKind::PD, Part::Update,
                    ChecksumKind::Full, SchemeKind::NewScheme),
            Resolution::AbftFixable);
  EXPECT_EQ(resolve(FaultType::Pcie, Timing::DuringOp, OpKind::PD, Part::Update,
                    ChecksumKind::Full, SchemeKind::PostOp),
            Resolution::CompleteRestart);
}

TEST(Probability, NoChecksumAlwaysCompleteRestart) {
  EXPECT_EQ(resolve(FaultType::Computation, Timing::DuringOp, OpKind::TMU, Part::Update,
                    ChecksumKind::None, SchemeKind::NewScheme),
            Resolution::CompleteRestart);
}

TEST(Probability, ExpectedRecoveryOrdersSchemes) {
  // Fig 9-11's message: expected recovery cost of full+new ≤ single+post.
  const Rates rates;
  const index_t n = 10240;
  const index_t nb = 256;
  double ours_total = 0.0;
  double prior_total = 0.0;
  for (index_t j = n; j >= nb; j -= nb) {
    for (auto op : {OpKind::PD, OpKind::PU, OpKind::TMU}) {
      const auto profile = lu_profile(op, j, nb, 4);
      const auto costs = lu_recovery_costs(op, n, j, nb);
      ours_total += expected_recovery_seconds(
          outcome_distribution(op, ChecksumKind::Full, SchemeKind::NewScheme, rates,
                               profile),
          costs);
      prior_total += expected_recovery_seconds(
          outcome_distribution(op, ChecksumKind::SingleSide, SchemeKind::PostOp, rates,
                               profile),
          costs);
    }
  }
  EXPECT_LT(ours_total, prior_total);
}

TEST(Probability, ProfilesScaleSensibly) {
  const auto small = lu_profile(OpKind::TMU, 2048, 256, 1);
  const auto large = lu_profile(OpKind::TMU, 8192, 256, 1);
  EXPECT_GT(large.flops, small.flops * 10);
  EXPECT_GT(large.seconds, small.seconds);
  const auto pd = lu_profile(OpKind::PD, 4096, 256, 8);
  EXPECT_GT(pd.bcast_elements, 0.0);
}

TEST(Probability, RecoveryCostsOrdered) {
  const auto costs = lu_recovery_costs(OpKind::TMU, 10240, 5120, 256);
  EXPECT_LT(costs.abft_fix, costs.local_restart);
  EXPECT_LT(costs.local_restart, costs.complete_restart);
}

}  // namespace
}  // namespace ftla::model

// Concurrency-correctness tests: thread pool exception paths, the
// PcieLink fault-hook/stats synchronization, TSan-targeted stress over
// concurrent decompositions, and the device-memory ownership checker.
//
// The stress tests here carry the ctest label "stress" (see
// tests/CMakeLists.txt); CI runs them under -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/campaign.hpp"
#include "core/ft_driver.hpp"
#include "fault/injector.hpp"
#include "matrix/generate.hpp"
#include "sim/ownership.hpp"
#include "sim/system.hpp"

namespace ftla {
namespace {

namespace ownership = sim::ownership;

// --- thread pool exception hardening ---------------------------------

TEST(PoolExceptions, WorkerChunkThrowReachesCaller) {
  ThreadPool pool(4);
  // Part 0 of parallel_for runs on the calling thread; the last index is
  // dispatched to a pool worker whenever more than one part exists.
  const index_t n = 1000;
  auto run = [&] {
    pool.parallel_for(0, n, [&](index_t i) {
      if (i == n - 1) throw FtlaError("boom from worker chunk");
    });
  };
  EXPECT_THROW(run(), FtlaError);
}

TEST(PoolExceptions, CallingThreadChunkThrowReachesCaller) {
  ThreadPool pool(4);
  // Index `begin` always lands in the calling thread's own chunk.
  auto run = [&] {
    pool.parallel_for(0, 1000, [&](index_t i) {
      if (i == 0) throw FtlaError("boom from calling-thread chunk");
    });
  };
  EXPECT_THROW(run(), FtlaError);
}

TEST(PoolExceptions, PoolUsableAfterThrow) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(
        pool.parallel_for(0, 100, [](index_t i) {
          if (i % 7 == 3) throw FtlaError("recurring failure");
        }),
        FtlaError);
    // Every worker must still be alive and active_ must be balanced, or
    // this second loop deadlocks / undercounts.
    std::atomic<int> hits{0};
    pool.parallel_for(0, 100, [&](index_t) { ++hits; });
    EXPECT_EQ(hits.load(), 100);
  }
}

TEST(PoolExceptions, ThrowingSubmitDoesNotKillWorker) {
  ThreadPool pool(2);
  // A bare submit() has no caller waiting for an exception: the pool
  // logs and drops it. The worker must survive to run later tasks.
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw FtlaError("unobserved task failure"); });
  }
  pool.wait_idle();
  std::atomic<int> hits{0};
  for (int i = 0; i < 8; ++i) pool.submit([&hits] { ++hits; });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 8);
}

TEST(PoolExceptions, FirstOfManyErrorsWins) {
  ThreadPool pool(4);
  std::atomic<int> throws{0};
  try {
    pool.parallel_for(0, 400, [&](index_t i) {
      if (i % 2 == 0) {
        ++throws;
        throw FtlaError("one of many");
      }
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const FtlaError&) {
  }
  // All chunks ran to completion (errors don't cancel siblings).
  EXPECT_GT(throws.load(), 1);
}

// --- PcieLink hook installation vs in-flight transfers ----------------

TEST(PcieHookRace, ToggleHookDuringTransfers) {
  sim::HeterogeneousSystem sys(2);
  MatD& src = sys.cpu().alloc(16, 16, 1.0);
  MatD& dst0 = sys.gpu(0).alloc(16, 16);
  MatD& dst1 = sys.gpu(1).alloc(16, 16);

  std::atomic<int> hook_calls{0};
  std::atomic<bool> go{false};

  std::thread t0([&] {
    while (!go.load()) {}
    for (int i = 0; i < 300; ++i) sys.h2d(src.const_view(), dst0.view(), 0);
  });
  std::thread t1([&] {
    while (!go.load()) {}
    for (int i = 0; i < 300; ++i) sys.h2d(src.const_view(), dst1.view(), 1);
  });
  std::thread toggler([&] {
    while (!go.load()) {}
    for (int i = 0; i < 200; ++i) {
      sys.link().set_fault_hook(
          [&hook_calls](ViewD, const sim::TransferInfo&) { ++hook_calls; });
      sys.link().clear_fault_hook();
    }
  });

  go.store(true);
  t0.join();
  t1.join();
  toggler.join();

  // Exact interleaving is timing-dependent; correctness is "no data race
  // and consistent stats", which TSan checks and this asserts.
  EXPECT_EQ(sys.link().stats().transfers, 600u);
  EXPECT_DOUBLE_EQ(dst0(15, 15), 1.0);
  EXPECT_DOUBLE_EQ(dst1(15, 15), 1.0);
}

TEST(PcieHookRace, StatsSnapshotWhileTransferring) {
  sim::HeterogeneousSystem sys(1);
  MatD& src = sys.cpu().alloc(8, 8, 2.0);
  MatD& dst = sys.gpu(0).alloc(8, 8);

  std::thread mover([&] {
    for (int i = 0; i < 500; ++i) sys.h2d(src.const_view(), dst.view(), 0);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const sim::LinkStats snap = sys.link().stats();
    EXPECT_GE(snap.transfers, last);
    last = snap.transfers;
  }
  mover.join();
  EXPECT_EQ(sys.link().stats().transfers, 500u);
}

// --- TSan-targeted decomposition stress -------------------------------

fault::FaultSpec pcie_fault_spec(core::Decomp decomp) {
  fault::FaultSpec spec;
  spec.type = fault::FaultType::Pcie;
  // Cholesky broadcasts the factored panel peer-to-peer; LU/QR broadcast
  // host-to-device (see the driver schedules).
  spec.site.op = decomp == core::Decomp::Cholesky ? fault::OpKind::BroadcastD2D
                                                  : fault::OpKind::BroadcastH2D;
  spec.site.iteration = 1;
  spec.target_br = 1;
  spec.target_bc = 1;
  spec.seed = 7;
  return spec;
}

TEST(ConcurrencyStress, ConcurrentDecompositionsWithFaults) {
  // Three full FT decompositions run concurrently, each on its own
  // simulated multi-GPU system, all sharing the global thread pool, the
  // logger, and the ownership registry — with PCIe faults firing through
  // injector hooks during the broadcasts. TSan validates the whole
  // stack; the asserts validate results were unaffected by the sharing.
  auto worker = [](core::Decomp decomp, std::atomic<bool>& ok) {
    core::FtOptions o;
    o.nb = 32;
    o.ngpu = 2;
    fault::FaultInjector injector;
    injector.schedule(pcie_fault_spec(decomp));

    const index_t n = 128;
    core::FtOutput out;
    switch (decomp) {
      case core::Decomp::Cholesky: {
        const MatD a = random_spd(n, 11);
        out = core::ft_cholesky(a.const_view(), o, &injector);
        break;
      }
      case core::Decomp::Lu: {
        const MatD a = random_diag_dominant(n, 12);
        out = core::ft_lu(a.const_view(), o, &injector);
        break;
      }
      case core::Decomp::Qr: {
        const MatD a = random_general(n, n, 13);
        out = core::ft_qr(a.const_view(), o, &injector);
        break;
      }
    }
    ok.store(out.ok() && injector.all_fired());
  };

  std::atomic<bool> ok_chol{false}, ok_lu{false}, ok_qr{false};
  std::thread tc(worker, core::Decomp::Cholesky, std::ref(ok_chol));
  std::thread tl(worker, core::Decomp::Lu, std::ref(ok_lu));
  std::thread tq(worker, core::Decomp::Qr, std::ref(ok_qr));
  tc.join();
  tl.join();
  tq.join();

  EXPECT_TRUE(ok_chol.load());
  EXPECT_TRUE(ok_lu.load());
  EXPECT_TRUE(ok_qr.load());
}

TEST(ConcurrencyStress, InjectorAccessorsDuringRun) {
  // Poll the injector's inspection API from another thread while hooks
  // fire from device streams — records()/num_pending() must be safe.
  fault::FaultInjector injector;
  injector.schedule(pcie_fault_spec(core::Decomp::Lu));

  core::FtOptions o;
  o.nb = 32;
  o.ngpu = 2;
  const MatD a = random_diag_dominant(96, 21);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load()) {
      (void)injector.num_pending();
      (void)injector.records();
      (void)injector.all_fired();
    }
  });
  const core::FtOutput out = core::ft_lu(a.const_view(), o, &injector);
  done.store(true);
  poller.join();

  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(injector.all_fired());
  EXPECT_EQ(injector.records().size(), 1u);
}

// --- device-memory ownership checker ----------------------------------

TEST(Ownership, RegistryMapsArenasToDevices) {
  sim::HeterogeneousSystem sys(2);
  MatD& on_cpu = sys.cpu().alloc(4, 4);
  MatD& on_g0 = sys.gpu(0).alloc(4, 4);
  MatD& on_g1 = sys.gpu(1).alloc(4, 4);

  EXPECT_EQ(ownership::owner_of(on_cpu.data()), sys.cpu().id());
  EXPECT_EQ(ownership::owner_of(on_g0.data()), sys.gpu(0).id());
  EXPECT_EQ(ownership::owner_of(on_g1.data()), sys.gpu(1).id());
  // Interior pointers resolve too.
  EXPECT_EQ(ownership::owner_of(&on_g1(3, 3)), sys.gpu(1).id());

  // Ordinary host memory belongs to no device.
  MatD plain(4, 4);
  EXPECT_EQ(ownership::owner_of(plain.data()), ownership::kNoDevice);
}

TEST(Ownership, ArenasUnregisteredOnTeardown) {
  const std::size_t before = ownership::num_arenas();
  {
    sim::HeterogeneousSystem sys(2);
    sys.gpu(0).alloc(8, 8);
    sys.gpu(1).alloc(8, 8);
    EXPECT_EQ(ownership::num_arenas(), before + 2);
  }
  EXPECT_EQ(ownership::num_arenas(), before);
}

TEST(Ownership, CrossDeviceAccessFromStreamIsCaught) {
  if (!ownership::checks_compiled())
    GTEST_SKIP() << "built without FTLA_CHECK_OWNERSHIP";

  ownership::reset_violation_count();
  sim::HeterogeneousSystem sys(2);
  MatD& mine = sys.gpu(0).alloc(16, 16, 1.0);
  MatD& theirs = sys.gpu(1).alloc(16, 16, 1.0);

  // gpu0's stream touching gpu1's arena through a kernel entry point is
  // exactly the bug class the checker exists for.
  sys.gpu(0).stream().enqueue([&] {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0,
               mine.const_view(), theirs.const_view(), 0.0, mine.view());
  });
  EXPECT_THROW(sys.gpu(0).stream().synchronize(), FtlaError);
  EXPECT_GT(ownership::violation_count(), 0u);
  ownership::reset_violation_count();
}

TEST(Ownership, OwnDeviceAccessFromStreamIsLegal) {
  if (!ownership::checks_compiled())
    GTEST_SKIP() << "built without FTLA_CHECK_OWNERSHIP";

  ownership::reset_violation_count();
  sim::HeterogeneousSystem sys(2);
  MatD& a = sys.gpu(0).alloc(16, 16, 1.0);
  MatD& c = sys.gpu(0).alloc(16, 16, 0.0);

  sys.gpu(0).stream().enqueue([&] {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0,
               a.const_view(), a.const_view(), 0.0, c.view());
  });
  EXPECT_NO_THROW(sys.gpu(0).stream().synchronize());
  EXPECT_EQ(ownership::violation_count(), 0u);
}

TEST(Ownership, ScopedDeviceBindsHostThread) {
  if (!ownership::checks_compiled())
    GTEST_SKIP() << "built without FTLA_CHECK_OWNERSHIP";

  ownership::reset_violation_count();
  sim::HeterogeneousSystem sys(2);
  MatD& on_g1 = sys.gpu(1).alloc(8, 8, 1.0);

  // Unbound host thread: exempt (the CPU stands in for device kernels).
  EXPECT_NO_THROW(ownership::check_access(on_g1.data(), "host touch"));

  {
    // Declaring "I act for gpu0" makes the same touch illegal...
    ownership::ScopedDevice as_gpu0(sys.gpu(0).id());
    EXPECT_THROW(ownership::check_access(on_g1.data(), "cross touch"),
                 FtlaError);
    // ...unless a transfer is in flight.
    ownership::ScopedTransfer xfer;
    EXPECT_NO_THROW(ownership::check_access(on_g1.data(), "during transfer"));
  }
  // Binding restored on scope exit.
  EXPECT_EQ(ownership::current_device(), ownership::kNoDevice);
  EXPECT_EQ(ownership::violation_count(), 1u);
  ownership::reset_violation_count();
}

TEST(Ownership, CleanDecompositionsReportZeroViolations) {
  if (!ownership::checks_compiled())
    GTEST_SKIP() << "built without FTLA_CHECK_OWNERSHIP";

  ownership::reset_violation_count();
  core::FtOptions o;
  o.nb = 32;
  o.ngpu = 3;
  const index_t n = 96;

  EXPECT_TRUE(core::ft_cholesky(random_spd(n, 31).const_view(), o).ok());
  EXPECT_TRUE(core::ft_lu(random_diag_dominant(n, 32).const_view(), o).ok());
  EXPECT_TRUE(core::ft_qr(random_general(n, n, 33).const_view(), o).ok());

  EXPECT_EQ(ownership::violation_count(), 0u);
}

}  // namespace
}  // namespace ftla

// Stress and hardening tests for the concurrency substrate and the
// strided-view code paths: many streams under load, repeated
// system construction/teardown, concurrent pool use from stream
// workers, and BLAS on non-contiguous sub-views.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "blas/blas.hpp"
#include "common/thread_pool.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "sim/system.hpp"

namespace ftla {
namespace {

TEST(Stress, ManyStreamsManyTasks) {
  sim::HeterogeneousSystem sys(8);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int g = 0; g < 8; ++g) {
      sys.gpu(g).stream().enqueue([&counter] { ++counter; });
    }
  }
  for (int g = 0; g < 8; ++g) sys.gpu(g).stream().synchronize();
  EXPECT_EQ(counter.load(), 160);
}

TEST(Stress, RepeatedSystemConstruction) {
  // Every FT run constructs and destroys a full system (threads
  // included); this must be leak- and deadlock-free.
  for (int i = 0; i < 25; ++i) {
    sim::HeterogeneousSystem sys(3);
    std::atomic<int> hits{0};
    sys.parallel_over_gpus([&](int) { ++hits; });
    ASSERT_EQ(hits.load(), 3);
  }
}

TEST(Stress, NestedPoolUseFromStreams) {
  // GPU stream workers may call library code that touches the global
  // pool (threaded gemm); this must not deadlock.
  sim::HeterogeneousSystem sys(4);
  const MatD a = random_general(96, 96, 1);
  const MatD b = random_general(96, 96, 2);
  std::vector<MatD> results;
  for (int g = 0; g < 4; ++g) results.emplace_back(96, 96, 0.0);

  sys.parallel_over_gpus([&](int g) {
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a.const_view(),
               b.const_view(), 0.0, results[static_cast<std::size_t>(g)].view());
  });
  for (int g = 1; g < 4; ++g) {
    EXPECT_LT(max_abs_diff(results[0].const_view(),
                           results[static_cast<std::size_t>(g)].const_view()),
              1e-12);
  }
}

TEST(Stress, GemmOnStridedSubviews) {
  // Operands that are interior blocks of a larger allocation (ld > rows):
  // the hot path of every TMU.
  const MatD big_a = random_general(64, 64, 3);
  const MatD big_b = random_general(64, 64, 4);
  MatD big_c(64, 64, 0.0);

  const auto a = big_a.block(8, 16, 24, 16);
  const auto b = big_b.block(16, 8, 16, 24);
  auto c = big_c.block(8, 8, 24, 24);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, b, 0.0, c);

  // Reference: copy to dense and multiply.
  MatD da(a);
  MatD db(b);
  MatD dc(24, 24, 0.0);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, da.const_view(),
             db.const_view(), 0.0, dc.view());
  EXPECT_LT(max_abs_diff(c.as_const(), dc.const_view()), 1e-13);

  // Elements outside the target block stay zero.
  EXPECT_DOUBLE_EQ(big_c(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(big_c(63, 63), 0.0);
}

TEST(Stress, TrsmOnStridedSubviews) {
  const MatD big = random_general(40, 40, 5, 0.5, 1.5);
  MatD big_b(40, 40);
  const auto tri = big.block(4, 4, 16, 16);
  const MatD x = random_general(16, 8, 6);

  // b = lower(tri)·x densely.
  auto b = big_b.block(4, 20, 16, 8);
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 16; ++i) {
      double s = 0.0;
      for (index_t k = 0; k <= i; ++k) s += tri(i, k) * x(k, j);
      b(i, j) = s;
    }
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::NoTrans,
             blas::Diag::NonUnit, 1.0, tri, b);
  EXPECT_LT(max_abs_diff(b.as_const(), x.const_view()), 1e-10);
}

TEST(Stress, ParallelForHeavyContention) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(0, 1000, [&](index_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 10L * (999L * 1000L / 2));
}

TEST(Stress, PcieManySmallTransfers) {
  sim::HeterogeneousSystem sys(2);
  MatD& src = sys.cpu().alloc(4, 4, 1.5);
  MatD& dst = sys.gpu(0).alloc(4, 4);
  for (int i = 0; i < 500; ++i) sys.h2d(src.const_view(), dst.view(), 0);
  EXPECT_EQ(sys.link().stats().transfers, 500u);
  EXPECT_DOUBLE_EQ(dst(3, 3), 1.5);
  EXPECT_GT(sys.link().stats().modeled_seconds, 500 * 5e-6 * 0.99);
}

}  // namespace
}  // namespace ftla

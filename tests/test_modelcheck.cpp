// Static task-graph verifier tests: hand-built DAGs with known-covered /
// known-uncovered windows and a known race exercise the
// all-linearizations semantics directly; the DPOR explorer is
// cross-checked against the static verdicts; the graph-mutation corpus
// has hard per-kind detection floors; and the driver graphs must agree
// with the single-trace analyzers' expectation profiles.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/modelcheck/check.hpp"
#include "analysis/modelcheck/explore.hpp"
#include "analysis/modelcheck/gmutate.hpp"
#include "analysis/modelcheck/gverify.hpp"
#include "analysis/taskgraph/extract.hpp"
#include "analysis/taskgraph/graph.hpp"

namespace ftla::analysis {
namespace {

using trace::BlockRange;
using trace::RegionClass;

/// Hand-built graphs use meta.b == 0 so the final-state sweep is inert
/// and each test isolates exactly the windows it constructs.
TaskGraph base() {
  TaskGraph g;
  g.extracted = true;
  g.complete = true;
  g.meta.algorithm = "test";
  g.meta.ngpu = 1;
  g.meta.b = 0;
  g.contexts = 2;
  return g;
}

TaskAccess access(AccessMode mode, int dev, index_t br, index_t bc,
                  fault::Part part = fault::Part::Update) {
  TaskAccess a;
  a.mode = mode;
  a.device = dev;
  a.rclass = RegionClass::Data;
  a.region = BlockRange::single(br, bc);
  a.part = part;
  return a;
}

std::uint32_t arrival(TaskGraph& g, int ctx, int dev, index_t iter) {
  TaskNode& n = g.add_node(TaskKind::Transfer);
  n.context = ctx;
  n.device = dev;
  n.iteration = iter;
  n.tctx = trace::TransferCtx::BroadcastH2D;
  n.from_device = trace::kHost;
  n.accesses.push_back(access(AccessMode::Out, dev, 0, 0));
  return n.id;
}

/// MUD(TMU, Reference) = One, so this read is a taint consume.
std::uint32_t consume(TaskGraph& g, int ctx, int dev, index_t iter) {
  TaskNode& n = g.add_node(TaskKind::Compute);
  n.context = ctx;
  n.device = dev;
  n.iteration = iter;
  n.op = fault::OpKind::TMU;
  n.accesses.push_back(
      access(AccessMode::In, dev, 0, 0, fault::Part::Reference));
  return n.id;
}

std::uint32_t verify(TaskGraph& g, int ctx, int dev, index_t iter) {
  TaskNode& n = g.add_node(TaskKind::Verify);
  n.context = ctx;
  n.device = dev;
  n.iteration = iter;
  n.check = trace::CheckPoint::AfterTMU;
  n.accesses.push_back(access(AccessMode::In, dev, 0, 0));
  return n.id;
}

std::uint32_t write(TaskGraph& g, int ctx, int dev, index_t iter) {
  TaskNode& n = g.add_node(TaskKind::Compute);
  n.context = ctx;
  n.device = dev;
  n.iteration = iter;
  n.op = fault::OpKind::PU;
  n.accesses.push_back(access(AccessMode::Out, dev, 0, 0));
  return n.id;
}

// --- structural verdicts ------------------------------------------------

TEST(GraphCheck, UnorderedConflictIsARace) {
  TaskGraph g = base();
  write(g, /*ctx=*/0, /*dev=*/0, /*iter=*/0);
  consume(g, /*ctx=*/1, /*dev=*/0, /*iter=*/0);
  const GraphReport r = verify_graph(g);
  ASSERT_TRUE(r.analyzable);
  ASSERT_FALSE(r.graph_findings.empty());
  EXPECT_EQ(r.graph_findings.front().kind, GraphFindingKind::Race);
  EXPECT_FALSE(r.clean());
}

TEST(GraphCheck, OrderingTheConflictRemovesTheRace) {
  TaskGraph g = base();
  const std::uint32_t w1 = write(g, 0, 0, 0);
  const std::uint32_t w2 = write(g, 1, 0, 0);
  g.add_edge(w1, w2);
  const GraphReport r = verify_graph(g);
  EXPECT_TRUE(r.race_free());
  EXPECT_TRUE(r.clean());
}

TEST(GraphCheck, CycleIsFatalAndNothingElseIsDecided) {
  TaskGraph g = base();
  const std::uint32_t a = write(g, 0, 0, 0);
  const std::uint32_t b = write(g, 1, 0, 0);
  g.add_edge(a, b);
  g.add_edge(b, a);
  const GraphReport r = verify_graph(g);
  ASSERT_EQ(r.graph_findings.size(), 1u);
  EXPECT_EQ(r.graph_findings.front().kind, GraphFindingKind::Cycle);
  EXPECT_TRUE(r.coverage_findings.empty());
  EXPECT_FALSE(r.clean());
}

TEST(GraphCheck, UnextractedGraphIsRejected) {
  TaskGraph g;  // extracted == false
  const GraphReport r = verify_graph(g);
  EXPECT_FALSE(r.analyzable);
  ASSERT_FALSE(r.graph_findings.empty());
  EXPECT_EQ(r.graph_findings.front().kind, GraphFindingKind::NotExtracted);
}

// --- window coverage over all linearizations ----------------------------

TEST(GraphCheck, UnverifiedArrivalConsumeIsUncovered) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  g.add_edge(a, r);
  const GraphReport rep = verify_graph(g);
  EXPECT_TRUE(rep.race_free());
  ASSERT_EQ(rep.coverage_findings.size(), 1u);
  EXPECT_EQ(rep.coverage_findings.front().kind,
            FindingKind::UnverifiedTransferConsume);
}

TEST(GraphCheck, VerifyAfterConsumeInSameIterationCovers) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 0, 0, 0);
  g.add_edge(a, r);
  g.add_edge(r, v);
  EXPECT_TRUE(verify_graph(g).clean());
}

TEST(GraphCheck, VerifyBetweenSourceAndConsumeClears) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  g.add_edge(a, v);
  g.add_edge(v, r);
  EXPECT_TRUE(verify_graph(g).clean());
}

TEST(GraphCheck, VerifyInLaterIterationExceedsContainment) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 0, 0, /*iter=*/1);
  g.add_edge(a, r);
  g.add_edge(r, v);
  const GraphReport rep = verify_graph(g);
  ASSERT_EQ(rep.coverage_findings.size(), 1u);
  EXPECT_EQ(rep.coverage_findings.front().kind,
            FindingKind::ContainmentExceeded);
}

TEST(GraphCheck, WriteTaintIsClearedByAnyDeviceVerify) {
  TaskGraph g = base();
  const std::uint32_t w = write(g, 0, /*dev=*/1, 0);
  // The consume reads a copy of the block at device 1; the verify runs
  // at device 1 too and clears the write taint for every device.
  const std::uint32_t r = consume(g, 0, 1, 0);
  g.add_edge(w, r);
  const GraphReport uncovered = verify_graph(g);
  ASSERT_EQ(uncovered.coverage_findings.size(), 1u);
  EXPECT_EQ(uncovered.coverage_findings.front().kind,
            FindingKind::UnverifiedWriteConsume);

  TaskGraph g2 = base();
  const std::uint32_t w2 = write(g2, 0, 1, 0);
  const std::uint32_t v2 = verify(g2, 0, 1, 0);
  const std::uint32_t r2 = consume(g2, 0, 1, 0);
  g2.add_edge(w2, v2);
  g2.add_edge(v2, r2);
  EXPECT_TRUE(verify_graph(g2).clean());
}

/// The distinguishing case vs the linear-replay analyzers: a verify that
/// is ordered after the source but UNORDERED with the consume covers in
/// every linearization (before the consume it clears, after it covers),
/// so the static checker must NOT flag it.
TEST(GraphCheck, FloatingVerifyCoversInEveryLinearization) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 1, 0, 0);
  g.add_edge(a, r);
  g.add_edge(a, v);  // v floats relative to r
  const GraphReport rep = verify_graph(g);
  EXPECT_TRUE(rep.race_free());  // verify read vs consume read: no write
  EXPECT_TRUE(rep.clean());

  // The explorer agrees: both interleavings replay clean.
  const ExploreResult ex = explore(g, rep);
  ASSERT_TRUE(ex.ran);
  EXPECT_TRUE(ex.exhaustive);
  EXPECT_EQ(ex.schedules, 2u);
  EXPECT_EQ(ex.violating_schedules, 0u);
  EXPECT_TRUE(ex.inconsistencies.empty());
}

/// A verify unordered with the SOURCE does not cover: some schedule runs
/// it before the taint even arrives. The static finding must exist even
/// though other schedules happen to be clean — that is the
/// all-linearizations quantifier at work.
TEST(GraphCheck, VerifyUnorderedWithSourceDoesNotCover) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  verify(g, 1, 0, 0);  // unordered with both a and r
  g.add_edge(a, r);
  const GraphReport rep = verify_graph(g);
  ASSERT_EQ(rep.coverage_findings.size(), 1u);
  EXPECT_EQ(rep.coverage_findings.front().kind,
            FindingKind::UnverifiedTransferConsume);

  const ExploreResult ex = explore(g, rep);
  ASSERT_TRUE(ex.ran);
  EXPECT_TRUE(ex.exhaustive);
  EXPECT_GE(ex.schedules, 2u);
  EXPECT_GE(ex.violating_schedules, 1u);   // the verify-first schedules
  EXPECT_LT(ex.violating_schedules, ex.schedules);  // ...but not all
  EXPECT_TRUE(ex.inconsistencies.empty());
}

// --- explorer ------------------------------------------------------------

TEST(GraphExplore, IndependentTasksCollapseToOneSchedule) {
  TaskGraph g = base();
  write(g, 0, 0, 0);
  write(g, 1, 1, 0);  // different device: independent
  const GraphReport rep = verify_graph(g);
  const ExploreResult ex = explore(g, rep);
  ASSERT_TRUE(ex.ran);
  EXPECT_TRUE(ex.exhaustive);
  EXPECT_EQ(ex.schedules, 1u);
}

TEST(GraphExplore, BudgetBoundsTheEnumeration) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  g.add_edge(a, r);
  g.add_edge(a, verify(g, 1, 0, 0));
  ExploreOptions opts;
  opts.max_schedules = 1;
  const ExploreResult ex = explore(g, verify_graph(g), opts);
  ASSERT_TRUE(ex.ran);
  EXPECT_FALSE(ex.exhaustive);
  EXPECT_EQ(ex.schedules, 1u);
}

TEST(GraphExplore, RefusesCyclicGraphs) {
  TaskGraph g = base();
  const std::uint32_t a = write(g, 0, 0, 0);
  const std::uint32_t b = write(g, 1, 0, 0);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_FALSE(explore(g, verify_graph(g)).ran);
}

// --- mutation surgery ----------------------------------------------------

TEST(GraphMutate, DropEdgeCreatesARace) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 0, 0, 0);
  g.add_edge(a, r);
  g.add_edge(r, v);
  ASSERT_TRUE(verify_graph(g).clean());

  GraphMutation m;
  m.kind = GraphMutationKind::DropEdge;
  m.u = a;
  m.v = r;
  const GraphReport rep = verify_graph(apply_graph_mutation(g, m));
  ASSERT_FALSE(rep.graph_findings.empty());
  EXPECT_EQ(rep.graph_findings.front().kind, GraphFindingKind::Race);
}

TEST(GraphMutate, DropVerifyNodeUncoversTheWindow) {
  TaskGraph g = base();
  const std::uint32_t a = arrival(g, 0, 0, 0);
  const std::uint32_t r = consume(g, 0, 0, 0);
  const std::uint32_t v = verify(g, 0, 0, 0);
  const std::uint32_t w = write(g, 0, 0, 1);  // downstream of the verify
  g.add_edge(a, r);
  g.add_edge(r, v);
  g.add_edge(v, w);
  GraphMutation m;
  m.kind = GraphMutationKind::DropVerifyNode;
  m.u = a;
  m.device = 0;
  m.br = 0;
  m.bc = 0;
  const TaskGraph mut = apply_graph_mutation(g, m);
  // Contraction keeps the bypassed order: consume still precedes the
  // downstream write, so no race — only the uncovered window remains.
  const GraphReport rep = verify_graph(mut);
  EXPECT_TRUE(rep.race_free());
  ASSERT_EQ(rep.coverage_findings.size(), 1u);
  EXPECT_EQ(rep.coverage_findings.front().kind,
            FindingKind::UnverifiedTransferConsume);
}

TEST(GraphMutate, ReorderTransferRacesThePostForkWorker) {
  TaskGraph g = base();
  const std::uint32_t t = arrival(g, 0, 0, 0);
  const std::uint32_t f = write(g, 0, 1, 0);  // the fork point
  const std::uint32_t w = write(g, 1, 0, 0);  // post-fork worker, conflicts t
  g.add_edge(t, f);
  g.add_edge(f, w);
  ASSERT_TRUE(verify_graph(g).race_free());

  GraphMutation m;
  m.kind = GraphMutationKind::ReorderTransfer;
  m.u = t;
  m.v = f;
  const TaskGraph mut = apply_graph_mutation(g, m);
  bool acyclic = false;
  topo_order(mut, &acyclic);
  EXPECT_TRUE(acyclic);
  const GraphReport rep = verify_graph(mut);
  ASSERT_FALSE(rep.graph_findings.empty());
  EXPECT_EQ(rep.graph_findings.front().kind, GraphFindingKind::Race);
}

// --- driver graphs -------------------------------------------------------

TEST(GraphVerify, NewSchemeCholeskyProvesCleanOverAllSchedules) {
  LintCase c;
  c.algorithm = "cholesky";
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = 2;
  c.n = 96;
  c.nb = 32;
  const GraphVerifyOutcome o = graph_verify_case(c);
  EXPECT_TRUE(o.pass);
  EXPECT_TRUE(o.report.clean());
  EXPECT_TRUE(o.refinement.pass);
  EXPECT_EQ(o.refinement.matched, o.graph.nodes.size());
  // Fork-join synchronization orders every dependent pair, so the whole
  // graph is one schedule class.
  EXPECT_TRUE(o.explored.exhaustive);
  EXPECT_EQ(o.explored.schedules, 1u);
  EXPECT_TRUE(o.explored.inconsistencies.empty());
}

TEST(GraphVerify, PriorOpCholeskyShowsItsDocumentedGapsOnly) {
  LintCase c;
  c.algorithm = "cholesky";
  c.scheme = core::SchemeKind::PriorOp;
  c.ngpu = 1;
  c.n = 96;
  c.nb = 32;
  const GraphVerifyOutcome o = graph_verify_case(c);
  EXPECT_TRUE(o.pass);  // gaps are expected findings, not failures
  EXPECT_TRUE(o.report.race_free());
  EXPECT_GT(o.report.fatal_coverage_count(), 0u);
  EXPECT_TRUE(o.missing.empty());
  EXPECT_TRUE(o.unexpected.empty());
}

TEST(GraphVerify, MutationCorpusFloorsPerKind) {
  LintCase c;
  c.algorithm = "cholesky";
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = 1;
  c.n = 96;
  c.nb = 32;
  const GraphVerifyReport r = run_graph_verify({c});
  EXPECT_TRUE(r.cases_pass);
  // Hard floors: every kind seeded at least once, zero escapes.
  std::size_t drop_edge = 0;
  std::size_t drop_verify = 0;
  std::size_t drop_migration = 0;
  std::size_t reorder = 0;
  for (const GraphMutationOutcome& m : r.mutations) {
    EXPECT_TRUE(m.detected) << m.mutation.name << ": " << m.mutation.description;
    switch (m.mutation.kind) {
      case GraphMutationKind::DropEdge: ++drop_edge; break;
      case GraphMutationKind::DropVerifyNode: ++drop_verify; break;
      case GraphMutationKind::DropMigrationVerify: ++drop_migration; break;
      case GraphMutationKind::ReorderTransfer: ++reorder; break;
    }
  }
  EXPECT_GT(drop_edge, 0u);
  EXPECT_GT(drop_verify, 0u);
  EXPECT_GT(reorder, 0u);
  // A static single-GPU schedule never migrates, so the migration kind
  // has no structural candidate — and the floor must not demand one.
  EXPECT_EQ(drop_migration, 0u);
  EXPECT_TRUE(r.corpus_pass);
  EXPECT_TRUE(r.pass);
}

/// The capability PR 7 was waiting for: a dataflow-scheduled run emits a
/// genuinely partial order, so the extracted graph has more than one
/// schedule class — and the new scheme's MUD coverage must hold over
/// every one of those linearizations, not just the recorded schedule.
TEST(GraphVerify, DataflowLookaheadProducesMultipleScheduleClasses) {
  LintCase c;
  c.algorithm = "cholesky";
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = 2;
  c.n = 96;
  c.nb = 32;
  c.scheduler = core::SchedulerKind::Dataflow;
  c.lookahead = 2;
  const GraphVerifyOutcome o = graph_verify_case(c);
  EXPECT_TRUE(o.pass);
  EXPECT_TRUE(o.report.race_free());
  EXPECT_TRUE(o.report.clean());  // coverage clean over ALL linearizations
  EXPECT_TRUE(o.refinement.pass);
  EXPECT_EQ(o.refinement.matched, o.graph.nodes.size());
  ASSERT_TRUE(o.explored.exhaustive);
  EXPECT_GT(o.explored.schedules, 1u);  // genuinely out-of-order
  EXPECT_EQ(o.explored.violating_schedules, 0u);
  EXPECT_TRUE(o.explored.inconsistencies.empty());
}

TEST(GraphVerify, DataflowMutationCorpusStillFullyDetected) {
  LintCase c;
  c.algorithm = "lu";
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = 2;
  c.n = 96;
  c.nb = 32;
  c.scheduler = core::SchedulerKind::Dataflow;
  const GraphVerifyReport r = run_graph_verify({c});
  EXPECT_TRUE(r.cases_pass);
  std::size_t kinds_seen = 0;
  std::size_t detected = 0;
  for (const GraphMutationOutcome& m : r.mutations) {
    if (m.detected) ++detected;
    EXPECT_TRUE(m.detected) << m.mutation.name;
    kinds_seen |= 1u << static_cast<unsigned>(m.mutation.kind);
  }
  EXPECT_EQ(detected, r.mutations.size());
  // The three structural kinds are seeded; DropMigrationVerify is not —
  // a static-ownership schedule has no Migrate arrival to anchor on.
  const std::size_t expected =
      (1u << static_cast<unsigned>(GraphMutationKind::DropEdge)) |
      (1u << static_cast<unsigned>(GraphMutationKind::DropVerifyNode)) |
      (1u << static_cast<unsigned>(GraphMutationKind::ReorderTransfer));
  EXPECT_EQ(kinds_seen, expected);
  EXPECT_TRUE(r.corpus_pass);
}

/// Lookahead zero degenerates to fork-join-like serialization, and the
/// graph must still verify; deeper lookahead must not change verdicts.
TEST(GraphVerify, DataflowLookaheadDepthsAllVerify) {
  for (const index_t lookahead : {index_t{0}, index_t{3}}) {
    LintCase c;
    c.algorithm = "qr";
    c.scheme = core::SchemeKind::NewScheme;
    c.ngpu = 2;
    c.n = 96;
    c.nb = 32;
    c.scheduler = core::SchedulerKind::Dataflow;
    c.lookahead = lookahead;
    const GraphVerifyOutcome o = graph_verify_case(c);
    EXPECT_TRUE(o.pass) << "lookahead=" << lookahead;
    EXPECT_TRUE(o.report.race_free()) << "lookahead=" << lookahead;
  }
}

/// Longest chain through the DAG, in tasks. This is the schedule's
/// makespan on idealized hardware (every task one step, unlimited
/// parallel lanes), so it is the deterministic form of the lookahead
/// claim: no wall clock, no core count, no noise.
std::size_t critical_path(const TaskGraph& g) {
  bool acyclic = false;
  const std::vector<std::uint32_t> order = topo_order(g, &acyclic);
  if (!acyclic || g.nodes.empty()) return 0;
  std::vector<std::size_t> depth(g.nodes.size(), 1);
  std::size_t best = 1;
  for (const std::uint32_t u : order) {
    for (const std::uint32_t v : g.succs(u)) {
      depth[v] = std::max(depth[v], depth[u] + 1);
      best = std::max(best, depth[v]);
    }
  }
  return best;
}

/// The lookahead win, stated structurally: for every decomposition the
/// dataflow graph's critical path is strictly shorter than fork-join's
/// (whose per-iteration barriers chain every task into the makespan).
/// This is the CI-stable counterpart of the wall-clock gate in
/// ftla-hotpath-bench, which only arms on multi-core hosts.
TEST(GraphVerify, DataflowCriticalPathBeatsForkJoin) {
  for (const char* algo : {"cholesky", "lu", "qr"}) {
    LintCase c;
    c.algorithm = algo;
    c.scheme = core::SchemeKind::NewScheme;
    c.ngpu = 2;
    c.n = 96;
    c.nb = 32;
    const CaseGraph fj = extract_case_graph(c);
    c.scheduler = core::SchedulerKind::Dataflow;
    c.lookahead = 2;
    const CaseGraph df = extract_case_graph(c);
    ASSERT_EQ(fj.status, core::RunStatus::Success) << algo;
    ASSERT_EQ(df.status, core::RunStatus::Success) << algo;
    const std::size_t cp_fj = critical_path(fj.graph);
    const std::size_t cp_df = critical_path(df.graph);
    ASSERT_GT(cp_fj, 0u) << algo;
    ASSERT_GT(cp_df, 0u) << algo;
    EXPECT_LT(cp_df, cp_fj)
        << algo << ": dataflow critical path " << cp_df << " of "
        << df.graph.nodes.size() << " tasks vs fork-join " << cp_fj << " of "
        << fj.graph.nodes.size();
  }
}

TEST(GraphVerify, MigrationCasesProveCleanOverAllSchedules) {
  // Skewed-fleet adaptive cases: the graphs carry first-class Migrate
  // transfer nodes and AfterMigrate verify nodes, and must still prove
  // race-free and covered in every linearization. The corpus floor now
  // demands a migration-targeted mutation, and it must be rejected.
  const GraphVerifyReport r =
      run_graph_verify(ftla::analysis::migration_cases(96, 16));
  EXPECT_TRUE(r.cases_pass);
  EXPECT_TRUE(r.corpus_pass);
  EXPECT_TRUE(r.pass);
  bool saw_migration_kind = false;
  for (const GraphMutationOutcome& m : r.mutations) {
    EXPECT_TRUE(m.detected) << m.mutation.name << ": "
                            << m.mutation.description;
    if (m.mutation.kind == GraphMutationKind::DropMigrationVerify) {
      saw_migration_kind = true;
    }
  }
  EXPECT_TRUE(saw_migration_kind);
  bool any_migrating_graph = false;
  for (const GraphVerifyOutcome& o : r.cases) {
    for (const TaskNode& n : o.graph.nodes) {
      if (n.kind == TaskKind::Transfer &&
          n.tctx == trace::TransferCtx::Migrate) {
        any_migrating_graph = true;
      }
    }
  }
  EXPECT_TRUE(any_migrating_graph);
}

TEST(GraphVerify, CertificateSerializesVersionedHeader) {
  LintCase c;
  c.algorithm = "lu";
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = 1;
  c.n = 96;
  c.nb = 32;
  const GraphVerifyReport r = run_graph_verify({c});
  std::ostringstream os;
  write_graph_certificate(r, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\n  \"tool\": \"ftla-graph-verify\",\n"
                      "  \"schema_version\": 3,\n  \"cases\": [\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"scheduler\":\"fork-join\""), std::string::npos);
  EXPECT_NE(json.find("\"lookahead\":1"), std::string::npos);
  EXPECT_NE(json.find("\"refinement\""), std::string::npos);
  EXPECT_NE(json.find("\"exploration\""), std::string::npos);
  EXPECT_NE(json.find("\"mutations\""), std::string::npos);
  EXPECT_NE(json.find("\"corpus_pass\": true"), std::string::npos);
}

}  // namespace
}  // namespace ftla::analysis

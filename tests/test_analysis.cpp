// Tests for the trace recorder and the schedule coverage analyzer:
// synthetic traces exercising the taint/window machinery, real dry-run
// traces cross-checked against the analytic verification-count model
// (Table VI), scheme-policy round-trips, and linter edge cases.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/coverage.hpp"
#include "analysis/lint.hpp"
#include "common/error.hpp"
#include "core/ft_driver.hpp"
#include "matrix/generate.hpp"
#include "model/verification_count.hpp"
#include "trace/recorder.hpp"

namespace ftla::analysis {
namespace {

using core::SchemeKind;
using fault::OpKind;
using fault::Part;
using trace::BlockRange;
using trace::CheckPoint;
using trace::RegionClass;
using trace::TraceRecorder;
using trace::TransferCtx;

// --- synthetic traces ----------------------------------------------------

/// Emits an arrival with its matching raw link observation (the analyzer
/// cross-checks the two counts; trace devices are kHost/-1 and 0-based
/// GPUs, the simulator's device ids are CPU = 0 and GPU g = g + 1).
void arrive(TraceRecorder& rec, TransferCtx ctx, int from, int to,
            const BlockRange& region,
            RegionClass rclass = RegionClass::Data) {
  rec.link_transfer(static_cast<device_id_t>(from + 1),
                    static_cast<device_id_t>(to + 1), 1024);
  rec.transfer_arrive(ctx, from, to, region, rclass);
}

/// Minimal run skeleton: one iteration, the given body, then RunEnd.
template <typename Body>
trace::Trace skeleton(Body&& body) {
  TraceRecorder rec;
  rec.begin_run({"lu", "post-op", "full", 2, 64, 32, 2});
  rec.begin_iteration(0);
  body(rec);
  rec.end_iteration(0);
  rec.end_run();
  return rec.snapshot();
}

bool has_kind(const CoverageReport& r, FindingKind k) {
  for (const Finding& f : r.findings) {
    if (f.kind == k) return true;
  }
  return false;
}

TEST(Coverage, UnverifiedArrivalConsumedOpensViolation) {
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
           BlockRange::single(0, 0));
    rec.compute_read(OpKind::PU, Part::Reference, 1, BlockRange::single(0, 0));
  });
  const CoverageReport r = analyze(t);
  EXPECT_TRUE(has_kind(r, FindingKind::UnverifiedTransferConsume));
  EXPECT_FALSE(r.clean());
}

TEST(Coverage, VerifyBeforeConsumeIsClean) {
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
           BlockRange::single(0, 0));
    rec.verify(CheckPoint::AfterPDBroadcast, 1, BlockRange::single(0, 0));
    rec.compute_read(OpKind::PU, Part::Reference, 1, BlockRange::single(0, 0));
  });
  EXPECT_TRUE(analyze(t).clean());
}

TEST(Coverage, SameIterationVerifyClosesWindow) {
  // Post-op style: consume first, check afterwards but within the
  // iteration at the consuming device — contained.
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
           BlockRange::single(0, 0));
    rec.compute_read(OpKind::PU, Part::Reference, 1, BlockRange::single(0, 0));
    rec.verify(CheckPoint::AfterPU, 1, BlockRange::single(0, 0));
  });
  EXPECT_TRUE(analyze(t).clean());
}

TEST(Coverage, VerifyAtOtherDeviceDoesNotCover) {
  // The copy that crossed PCIe is the one at device 1; checking the
  // sender's copy proves nothing about the receiver's.
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
           BlockRange::single(0, 0));
    rec.verify(CheckPoint::AfterPD, 0, BlockRange::single(0, 0));
    rec.compute_read(OpKind::PU, Part::Reference, 1, BlockRange::single(0, 0));
  });
  EXPECT_TRUE(has_kind(analyze(t), FindingKind::UnverifiedTransferConsume));
}

TEST(Coverage, CrossIterationVerifyIsContainmentExceeded) {
  TraceRecorder rec;
  rec.begin_run({"lu", "post-op", "full", 2, 64, 32, 2});
  rec.begin_iteration(0);
  arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
         BlockRange::single(1, 0));
  rec.compute_read(OpKind::TMU, Part::Reference, 1, BlockRange::single(1, 0));
  rec.end_iteration(0);
  rec.begin_iteration(1);
  rec.verify(CheckPoint::BeforePD, 1, BlockRange::single(1, 0));
  rec.end_iteration(1);
  rec.end_run();
  const CoverageReport r = analyze(rec.snapshot());
  EXPECT_TRUE(has_kind(r, FindingKind::ContainmentExceeded));
  EXPECT_FALSE(has_kind(r, FindingKind::UnverifiedTransferConsume));
}

TEST(Coverage, MudZeroReadsNeverOpenWindows) {
  // The TMU update part has MUD 0: corruption stays a standalone
  // element, correctable whenever it is eventually checked.
  const auto t = skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::TMU, 1, BlockRange::single(1, 1));
    rec.compute_read(OpKind::TMU, Part::Update, 1, BlockRange::single(1, 1));
  });
  const CoverageReport r = analyze(t);
  EXPECT_FALSE(has_kind(r, FindingKind::UnverifiedWriteConsume));
}

TEST(Coverage, UnverifiedWriteConsumedByMudTwoOp) {
  // QR's prior-op gap: CTF reads the just-written V panel (MUD 2)
  // before anything checked it.
  const auto t = skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, trace::kHost, BlockRange::single(0, 0));
    rec.compute_read(OpKind::CTF, Part::Reference, trace::kHost,
                     BlockRange::single(0, 0));
  });
  EXPECT_TRUE(has_kind(analyze(t), FindingKind::UnverifiedWriteConsume));
}

TEST(Coverage, FinalWriteUnverifiedAtRunEnd) {
  const auto t = skeleton([](TraceRecorder& rec) {
    rec.compute_write(OpKind::PD, trace::kHost, BlockRange::single(1, 1));
  });
  EXPECT_TRUE(has_kind(analyze(t), FindingKind::FinalWriteUnverified));
}

TEST(Coverage, RetransferIsRecoveryNotTaint) {
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::Retransfer, trace::kHost, 1,
           BlockRange::single(0, 0));
    rec.compute_read(OpKind::PU, Part::Reference, 1, BlockRange::single(0, 0));
  });
  EXPECT_FALSE(has_kind(analyze(t), FindingKind::UnverifiedTransferConsume));
}

TEST(Coverage, WorkspaceArrivalIsInformationalOnly) {
  const auto t = skeleton([](TraceRecorder& rec) {
    arrive(rec, TransferCtx::BroadcastH2D, trace::kHost, 1,
           BlockRange::single(0, 0), RegionClass::Workspace);
    rec.compute_read(OpKind::TMU, Part::Reference, 1, BlockRange::single(0, 0),
                     RegionClass::Workspace);
  });
  const CoverageReport r = analyze(t);
  EXPECT_TRUE(has_kind(r, FindingKind::UnprotectedTransfer));
  EXPECT_TRUE(r.clean());  // informational findings never fail a run
}

TEST(Coverage, MissingRunEndIsIncomplete) {
  TraceRecorder rec;
  rec.begin_run({"lu", "post-op", "full", 1, 64, 32, 2});
  rec.begin_iteration(0);
  rec.end_iteration(0);
  EXPECT_TRUE(has_kind(analyze(rec.snapshot()), FindingKind::TraceIncomplete));
}

TEST(Coverage, UnannotatedLinkTransferIsIncomplete) {
  const auto t = skeleton([](TraceRecorder& rec) {
    // Raw PCIe traffic with no matching annotated arrival: the driver
    // instrumentation missed a transfer site.
    rec.link_transfer(0, 1, 1024);
  });
  EXPECT_TRUE(has_kind(analyze(t), FindingKind::TraceIncomplete));
}

TEST(Coverage, ZeroEventTraceOnlyReportsIncomplete) {
  const CoverageReport r = analyze(trace::Trace{});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, FindingKind::TraceIncomplete);
}

// --- traced counts vs the analytic model (Table VI) ----------------------

/// Dry-runs LU on one device (the configuration Table VI models: no
/// replicated receiver checks) and returns the analyzed trace.
CoverageReport traced_lu(SchemeKind scheme) {
  trace::TraceRecorder rec;
  core::FtOptions opts;
  opts.nb = 32;
  opts.ngpu = 1;
  opts.scheme = scheme;
  opts.trace = &rec;
  const MatD a = random_diag_dominant(128, 7);
  const core::FtOutput out = core::ft_lu(a.view().as_const(), opts);
  EXPECT_TRUE(out.ok());
  return analyze(rec.snapshot());
}

TEST(ModelCrossCheck, TracedBlocksMatchTableVI) {
  for (SchemeKind scheme :
       {SchemeKind::PriorOp, SchemeKind::PostOp, SchemeKind::NewScheme}) {
    const CoverageReport r = traced_lu(scheme);
    const index_t b_total = 4;  // 128 / 32
    ASSERT_EQ(r.per_iteration.size(), static_cast<std::size_t>(b_total));
    for (const IterationChecksums& it : r.per_iteration) {
      const model::IterationChecks m =
          model::blocks_per_iteration(scheme, b_total - it.iteration);
      EXPECT_EQ(static_cast<double>(it.pd_before), m.pd_before)
          << to_string(scheme) << " k=" << it.iteration;
      EXPECT_EQ(static_cast<double>(it.pd_after), m.pd_after)
          << to_string(scheme) << " k=" << it.iteration;
      EXPECT_EQ(static_cast<double>(it.pu_before), m.pu_before)
          << to_string(scheme) << " k=" << it.iteration;
      EXPECT_EQ(static_cast<double>(it.pu_after), m.pu_after)
          << to_string(scheme) << " k=" << it.iteration;
      EXPECT_EQ(static_cast<double>(it.tmu_before), m.tmu_before)
          << to_string(scheme) << " k=" << it.iteration;
      EXPECT_EQ(static_cast<double>(it.tmu_after), m.tmu_after)
          << to_string(scheme) << " k=" << it.iteration;
    }
  }
}

TEST(ModelCrossCheck, TracedTotalMatchesClosedForm) {
  for (SchemeKind scheme :
       {SchemeKind::PriorOp, SchemeKind::PostOp, SchemeKind::NewScheme}) {
    const CoverageReport r = traced_lu(scheme);
    EXPECT_EQ(static_cast<double>(r.totals().total()),
              model::total_blocks(scheme, 128, 32))
        << to_string(scheme);
  }
}

// --- scheme policy round-trips -------------------------------------------

TEST(SchemePolicy, NamesAreDistinctAndStable) {
  EXPECT_STREQ(core::to_string(SchemeKind::PriorOp), "prior-op");
  EXPECT_STREQ(core::to_string(SchemeKind::PostOp), "post-op");
  EXPECT_STREQ(core::to_string(SchemeKind::NewScheme), "new-scheme");
}

TEST(SchemePolicy, PriorOpChecksExactlyTheInputs) {
  const core::SchemePolicy p = core::SchemePolicy::make(SchemeKind::PriorOp);
  EXPECT_TRUE(p.check_before_pd && p.check_before_pu && p.check_before_tmu);
  EXPECT_FALSE(p.check_after_pd || p.check_after_pd_broadcast ||
               p.check_after_pu || p.check_after_pu_broadcast ||
               p.check_after_tmu || p.heuristic_tmu);
}

TEST(SchemePolicy, PostOpChecksExactlyTheOutputs) {
  const core::SchemePolicy p = core::SchemePolicy::make(SchemeKind::PostOp);
  EXPECT_TRUE(p.check_after_pd && p.check_after_pu && p.check_after_tmu);
  EXPECT_FALSE(p.check_before_pd || p.check_before_pu || p.check_before_tmu ||
               p.check_after_pd_broadcast || p.check_after_pu_broadcast ||
               p.heuristic_tmu);
}

TEST(SchemePolicy, NewSchemeMovesPostChecksPastBroadcasts) {
  const core::SchemePolicy p = core::SchemePolicy::make(SchemeKind::NewScheme);
  EXPECT_TRUE(p.check_before_pd && p.check_after_pd_broadcast &&
              p.check_before_pu && p.check_after_pu_broadcast &&
              p.heuristic_tmu);
  EXPECT_FALSE(p.check_after_pd || p.check_after_pu || p.check_before_tmu ||
               p.check_after_tmu);
}

// --- linter ---------------------------------------------------------------

TEST(Lint, NewSchemeIsCleanOnEveryAlgorithm) {
  for (const char* alg : {"cholesky", "lu", "qr"}) {
    LintCase c;
    c.algorithm = alg;
    c.scheme = SchemeKind::NewScheme;
    c.n = 128;
    c.nb = 32;
    const LintOutcome o = lint_case(c);
    EXPECT_TRUE(o.pass) << alg;
    EXPECT_TRUE(o.report.clean()) << alg;
  }
}

TEST(Lint, LegacySchemesExposeTheirDocumentedGaps) {
  for (const char* alg : {"cholesky", "lu", "qr"}) {
    for (SchemeKind s : {SchemeKind::PriorOp, SchemeKind::PostOp}) {
      LintCase c;
      c.algorithm = alg;
      c.scheme = s;
      c.n = 128;
      c.nb = 32;
      const LintOutcome o = lint_case(c);
      EXPECT_TRUE(o.pass) << alg << '/' << core::to_string(s);
      EXPECT_FALSE(o.report.clean()) << alg << '/' << core::to_string(s)
                                     << ": the known gap must surface";
      EXPECT_TRUE(o.missing.empty());
      EXPECT_TRUE(o.unexpected.empty());
    }
  }
}

TEST(Lint, BlockSizeMustDivideDimension) {
  LintCase c;
  c.n = 100;  // not a multiple of nb = 32
  EXPECT_THROW(lint_case(c), FtlaError);
}

TEST(Lint, RejectsBadConfigurations) {
  LintCase c;
  c.algorithm = "ldl";
  EXPECT_THROW(lint_case(c), FtlaError);
  c = LintCase{};
  c.ngpu = 0;
  EXPECT_THROW(lint_case(c), FtlaError);
}

TEST(Lint, SingleDeviceMatrixStillLints) {
  LintCase c;
  c.algorithm = "lu";
  c.scheme = SchemeKind::NewScheme;
  c.ngpu = 1;
  c.n = 64;
  c.nb = 32;
  const LintOutcome o = lint_case(c);
  EXPECT_TRUE(o.pass);
}

TEST(Lint, ReportSerializesAllCases) {
  LintCase c;
  c.n = 64;
  c.nb = 32;
  std::vector<LintOutcome> outcomes{lint_case(c)};
  std::ostringstream os;
  write_report(outcomes, os);
  const std::string json = os.str();
  // The report header is frozen in its versioned form: tool name first,
  // then the schema version consumers dispatch on.
  EXPECT_NE(json.find("{\n  \"tool\": \"ftla-schedule-lint\",\n"
                      "  \"schema_version\": 3,\n  \"cases\": [\n"),
            std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"cholesky\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": true"), std::string::npos);
}

TEST(Lint, DefaultMatrixCoversAllCombinations) {
  const auto cases = default_matrix(128, 32, {1, 2});
  EXPECT_EQ(cases.size(), 3u * 3u * 2u);
}

TEST(Lint, MigrationCasesPinTheSkewedFleet) {
  const auto cases = migration_cases(96, 16);
  ASSERT_EQ(cases.size(), 4u);
  for (const LintCase& c : cases) {
    EXPECT_TRUE(c.adaptive_balance);
    EXPECT_EQ(c.scheme, SchemeKind::NewScheme);
    EXPECT_EQ(c.ngpu, 2);
    ASSERT_EQ(c.gpu_time_scale.size(), 2u);
    EXPECT_EQ(c.gpu_time_scale[1], 2.0);
  }
  EXPECT_EQ(cases[1].scheduler, core::SchedulerKind::Dataflow);
}

TEST(Lint, MigrationCasesStayCleanAndActuallyMigrate) {
  for (const LintCase& c : migration_cases(96, 16)) {
    const LintOutcome o = lint_case(c);
    EXPECT_TRUE(o.pass) << c.algorithm;
    EXPECT_TRUE(o.report.clean()) << c.algorithm;
    // Migration verifies land in the extension bucket: a migration case
    // whose trace never migrated would prove nothing.
    EXPECT_GT(o.report.totals().extension, 0u) << c.algorithm;
  }
}

TEST(Lint, FusedAbftCasesStayCleanWithFusedTmuEvents) {
  // With fused ABFT on, the trailing-update GEMMs verify their own
  // output tiles in-kernel: the traces carry FusedTmu verify events
  // (counted in the extension bucket), and the new scheme still proves
  // clean — fused verifies are extra coverage, never a new gap.
  for (const char* alg : {"cholesky", "lu", "qr"}) {
    LintCase c;
    c.algorithm = alg;
    c.scheme = SchemeKind::NewScheme;
    c.n = 128;
    c.nb = 32;
    c.fused_abft = true;
    const LintOutcome o = lint_case(c);
    EXPECT_TRUE(o.pass) << alg;
    EXPECT_TRUE(o.report.clean()) << alg;
    EXPECT_GT(o.report.totals().extension, 0u) << alg;

    std::size_t fused_events = 0;
    const RecordedRun run = record_case(c, /*sync_capture=*/false);
    for (const trace::TraceEvent& e : run.trace.events) {
      if (e.kind == trace::EventKind::Verify &&
          e.check == CheckPoint::FusedTmu) {
        ++fused_events;
      }
    }
    EXPECT_GT(fused_events, 0u) << alg;
  }
}

TEST(Lint, FusedAbftKeepsLegacyGapsSurfacing) {
  // The legacy schemes' documented gaps are PD/transfer windows, not TMU
  // writes: turning on fused ABFT must not mask them.
  for (const char* alg : {"cholesky", "lu", "qr"}) {
    for (SchemeKind s : {SchemeKind::PriorOp, SchemeKind::PostOp}) {
      LintCase c;
      c.algorithm = alg;
      c.scheme = s;
      c.n = 128;
      c.nb = 32;
      c.fused_abft = true;
      const LintOutcome o = lint_case(c);
      EXPECT_TRUE(o.pass) << alg << '/' << core::to_string(s);
      EXPECT_FALSE(o.report.clean()) << alg << '/' << core::to_string(s);
      EXPECT_TRUE(o.missing.empty()) << alg << '/' << core::to_string(s);
    }
  }
}

// --- trace serialization --------------------------------------------------

TEST(TraceJsonl, EmitsMetaAndEvents) {
  const auto t = skeleton([](TraceRecorder& rec) {
    rec.verify(CheckPoint::AfterPD, trace::kHost, BlockRange::single(0, 0));
  });
  std::ostringstream os;
  trace::write_jsonl(t, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"algorithm\":\"lu\""), std::string::npos);
  EXPECT_NE(s.find("\"kind\":\"verify\""), std::string::npos);
  EXPECT_NE(s.find("\"check\":\"after_pd\""), std::string::npos);
}

}  // namespace
}  // namespace ftla::analysis

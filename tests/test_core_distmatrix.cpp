// Tests for the distributed checksummed matrix: scatter/gather fidelity,
// block/checksum view addressing across GPU counts, and encode_all.

#include <gtest/gtest.h>

#include "checksum/verify.hpp"
#include "core/dist_matrix.hpp"
#include "matrix/compare.hpp"
#include "matrix/norms.hpp"
#include "matrix/generate.hpp"

namespace ftla::core {
namespace {

TEST(DistMatrix, ScatterGatherRoundTrip) {
  for (int ngpu : {1, 2, 3, 5}) {
    sim::HeterogeneousSystem sys(ngpu);
    DistMatrix dm(sys, 96, 16, ChecksumKind::Full);
    const MatD a = random_general(96, 96, 42);
    dm.scatter(a.const_view());
    MatD back(96, 96);
    dm.gather(back.view());
    EXPECT_TRUE(approx_equal(a.const_view(), back.const_view(), 0.0)) << ngpu;
  }
}

TEST(DistMatrix, BlockViewsAddressTheRightData) {
  sim::HeterogeneousSystem sys(2);
  DistMatrix dm(sys, 64, 16, ChecksumKind::Full);
  MatD a(64, 64);
  for (index_t j = 0; j < 64; ++j)
    for (index_t i = 0; i < 64; ++i) a(i, j) = static_cast<double>(i * 1000 + j);
  dm.scatter(a.const_view());

  for (index_t br = 0; br < 4; ++br) {
    for (index_t bc = 0; bc < 4; ++bc) {
      const auto blk = dm.block(br, bc);
      EXPECT_EQ(blk(0, 0), a(br * 16, bc * 16)) << br << "," << bc;
      EXPECT_EQ(blk(15, 15), a(br * 16 + 15, bc * 16 + 15));
    }
  }
}

TEST(DistMatrix, OwnershipFollowsBlockCyclic) {
  sim::HeterogeneousSystem sys(3);
  DistMatrix dm(sys, 96, 16, ChecksumKind::SingleSide);
  for (index_t bc = 0; bc < 6; ++bc) {
    EXPECT_EQ(dm.owner(bc), static_cast<int>(bc % 3));
  }
}

TEST(DistMatrix, EncodeAllProducesVerifiableChecksums) {
  sim::HeterogeneousSystem sys(2);
  DistMatrix dm(sys, 64, 16, ChecksumKind::Full);
  const MatD a = random_general(64, 64, 7);
  dm.scatter(a.const_view());
  dm.encode_all(checksum::Encoder::FusedTiled);

  checksum::Tolerance tol;
  tol.context = 64.0;
  for (index_t br = 0; br < 4; ++br) {
    for (index_t bc = 0; bc < 4; ++bc) {
      const auto res = checksum::verify_full(dm.block(br, bc).as_const(),
                                             dm.col_cs(br, bc).as_const(),
                                             dm.row_cs(br, bc).as_const(), tol);
      EXPECT_TRUE(res.clean()) << br << "," << bc;
    }
  }
}

TEST(DistMatrix, LowerOnlyEncodingSkipsUpperBlocks) {
  sim::HeterogeneousSystem sys(2);
  DistMatrix dm(sys, 64, 16, ChecksumKind::Full);
  const MatD a = random_general(64, 64, 8);
  dm.scatter(a.const_view());
  dm.encode_all(checksum::Encoder::FusedTiled, /*lower_only=*/true);

  // Upper-triangle checksums were never written: still zero.
  EXPECT_DOUBLE_EQ(max_abs(dm.col_cs(0, 3).as_const()), 0.0);
  // Lower-triangle checksums verify.
  checksum::Tolerance tol;
  tol.context = 64.0;
  const auto res = checksum::verify_col(dm.block(3, 0).as_const(),
                                        dm.col_cs(3, 0).as_const(), tol);
  EXPECT_TRUE(res.clean());
}

TEST(DistMatrix, PanelViewsSpanRows) {
  sim::HeterogeneousSystem sys(2);
  DistMatrix dm(sys, 64, 16, ChecksumKind::Full);
  const MatD a = random_general(64, 64, 9);
  dm.scatter(a.const_view());

  const auto panel = dm.col_panel(1, 2);  // block col 1, rows from block 2
  EXPECT_EQ(panel.rows(), 32);
  EXPECT_EQ(panel.cols(), 16);
  EXPECT_EQ(panel(0, 0), a(32, 16));

  const auto cs_panel = dm.col_cs_panel(1, 2);
  EXPECT_EQ(cs_panel.rows(), 2 * 2);
  const auto rcs_panel = dm.row_cs_panel(1, 2);
  EXPECT_EQ(rcs_panel.rows(), 32);
  EXPECT_EQ(rcs_panel.cols(), 2);
}

TEST(DistMatrix, RejectsBadDimensions) {
  sim::HeterogeneousSystem sys(1);
  EXPECT_THROW(DistMatrix(sys, 100, 16, ChecksumKind::Full), FtlaError);
  EXPECT_THROW(DistMatrix(sys, 0, 16, ChecksumKind::Full), FtlaError);
}

TEST(DistMatrix, SingleSideRowOrientation) {
  sim::HeterogeneousSystem sys(1);
  DistMatrix dm(sys, 32, 16, ChecksumKind::SingleSide, SingleSideDim::Row);
  EXPECT_FALSE(dm.has_col_cs());
  EXPECT_TRUE(dm.has_row_cs());
  EXPECT_THROW((void)dm.col_cs(0, 0), FtlaError);
  (void)dm.row_cs(0, 0);  // must not throw
}

}  // namespace
}  // namespace ftla::core

// Level-3 BLAS tests: parameterized sweeps against naive references for
// gemm (all transpose combos), trsm and trmm (all 16 variants each), and
// syrk (both uplo/trans combos).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "blas/level3.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace ftla::blas {
namespace {

MatD naive_gemm(Trans ta, Trans tb, double alpha, const MatD& a, const MatD& b, double beta,
                MatD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = ta == Trans::NoTrans ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = ta == Trans::NoTrans ? a(i, p) : a(p, i);
        const double bv = tb == Trans::NoTrans ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
  return c;
}

/// Builds the dense matrix representing the `uplo`/`diag` triangle of a.
MatD dense_triangle(const MatD& a, Uplo uplo, Diag diag) {
  const index_t n = a.rows();
  MatD t(n, n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) t(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : a(i, j);
    }
  }
  return t;
}

using GemmParam = std::tuple<int, int, int, int, int, double, double>;  // m n k ta tb alpha beta

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, tai, tbi, alpha, beta] = GetParam();
  const auto ta = tai ? Trans::Trans : Trans::NoTrans;
  const auto tb = tbi ? Trans::Trans : Trans::NoTrans;
  const MatD a = ta == Trans::NoTrans ? random_general(m, k, 1) : random_general(k, m, 1);
  const MatD b = tb == Trans::NoTrans ? random_general(k, n, 2) : random_general(n, k, 2);
  MatD c = random_general(m, n, 3);

  MatD expect = naive_gemm(ta, tb, alpha, a, b, beta, c);
  gemm(ta, tb, alpha, a.const_view(), b.const_view(), beta, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-11 * (1.0 + static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(
        GemmParam{1, 1, 1, 0, 0, 1.0, 0.0}, GemmParam{5, 7, 3, 0, 0, 1.0, 1.0},
        GemmParam{16, 16, 16, 0, 0, -1.0, 1.0}, GemmParam{33, 17, 29, 0, 0, 2.5, -0.5},
        GemmParam{8, 8, 8, 1, 0, 1.0, 0.0}, GemmParam{13, 11, 9, 1, 0, -2.0, 1.0},
        GemmParam{8, 8, 8, 0, 1, 1.0, 0.0}, GemmParam{13, 11, 9, 0, 1, 1.0, 0.5},
        GemmParam{8, 8, 8, 1, 1, 1.0, 0.0}, GemmParam{13, 11, 9, 1, 1, -1.5, 2.0},
        GemmParam{2, 64, 512, 0, 0, 1.0, 0.0},   // checksum-encoding shape
        GemmParam{64, 2, 512, 1, 0, 1.0, 0.0},   // row-checksum shape
        GemmParam{100, 100, 100, 0, 0, 1.0, 1.0},
        GemmParam{7, 5, 0, 0, 0, 1.0, 2.0}));    // k = 0: pure scaling

TEST(Gemm, LargeTriggersThreadedPathAndMatches) {
  const index_t n = 160;  // above the parallel flop threshold
  const MatD a = random_general(n, n, 10);
  const MatD b = random_general(n, n, 11);
  MatD c1(n, n, 0.0);
  MatD c2(n, n, 0.0);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c1.view());
  gemm_seq(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0,
           c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-12);
}

TEST(Gemm, DimensionMismatchThrows) {
  MatD a(3, 4);
  MatD b(5, 2);
  MatD c(3, 2);
  EXPECT_THROW(
      gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c.view()),
      FtlaError);
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  // beta == 0 must ignore prior contents, including NaN (BLAS semantics).
  MatD a = identity(2);
  MatD b = identity(2);
  MatD c(2, 2, std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c.view());
  EXPECT_TRUE(approx_equal(c.view(), identity(2).view(), 0.0));
}

using TriParam = std::tuple<int, int, int, int>;  // side uplo trans diag

class TrsmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrsmSweep, SolveRoundTrip) {
  const auto [si, ui, ti, di] = GetParam();
  const auto side = si ? Side::Right : Side::Left;
  const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
  const auto trans = ti ? Trans::Trans : Trans::NoTrans;
  const auto diag = di ? Diag::Unit : Diag::NonUnit;

  const index_t m = 9;
  const index_t n = 6;
  const index_t asz = side == Side::Left ? m : n;
  MatD a = random_general(asz, asz, 21, 0.5, 1.5);  // diag bounded away from 0
  const MatD x = random_general(m, n, 22);

  // B = op(tri(A)) · X  (or X · op(tri(A))) computed densely.
  const MatD tri = dense_triangle(a, uplo, diag);
  MatD b(m, n, 0.0);
  if (side == Side::Left) {
    b = naive_gemm(trans, Trans::NoTrans, 1.0, tri, x, 0.0, b);
  } else {
    b = naive_gemm(Trans::NoTrans, trans, 1.0, x, tri, 0.0, b);
  }

  trsm(side, uplo, trans, diag, 1.0, a.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-9)
      << to_string(side) << to_string(uplo) << to_string(trans) << to_string(diag);
}

class TrmmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrmmSweep, MatchesDenseMultiply) {
  const auto [si, ui, ti, di] = GetParam();
  const auto side = si ? Side::Right : Side::Left;
  const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
  const auto trans = ti ? Trans::Trans : Trans::NoTrans;
  const auto diag = di ? Diag::Unit : Diag::NonUnit;

  const index_t m = 8;
  const index_t n = 5;
  const index_t asz = side == Side::Left ? m : n;
  MatD a = random_general(asz, asz, 31);
  MatD b = random_general(m, n, 32);

  const MatD tri = dense_triangle(a, uplo, diag);
  MatD expect(m, n, 0.0);
  if (side == Side::Left) {
    expect = naive_gemm(trans, Trans::NoTrans, 1.5, tri, b, 0.0, expect);
  } else {
    expect = naive_gemm(Trans::NoTrans, trans, 1.5, b, tri, 0.0, expect);
  }

  trmm(side, uplo, trans, diag, 1.5, a.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), expect.view()), 1e-12)
      << to_string(side) << to_string(uplo) << to_string(trans) << to_string(diag);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TrsmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));
INSTANTIATE_TEST_SUITE_P(AllVariants, TrmmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Syrk, LowerNoTransMatchesGemm) {
  const index_t n = 10;
  const index_t k = 6;
  const MatD a = random_general(n, k, 41);
  MatD c = random_symmetric(n, 42);
  MatD expect = naive_gemm(Trans::NoTrans, Trans::Trans, -1.0, a, a, 1.0, c);
  syrk(Uplo::Lower, Trans::NoTrans, -1.0, a.const_view(), 1.0, c.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
}

TEST(Syrk, UpperTransMatchesGemm) {
  const index_t n = 7;
  const index_t k = 9;
  const MatD a = random_general(k, n, 43);  // op(A) = Aᵀ is n×k
  MatD c = random_symmetric(n, 44);
  MatD expect = naive_gemm(Trans::Trans, Trans::NoTrans, 2.0, a, a, 0.5, c);
  syrk(Uplo::Upper, Trans::Trans, 2.0, a.const_view(), 0.5, c.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
}

TEST(Syrk, LeavesOppositeTriangleUntouched) {
  const index_t n = 5;
  const MatD a = random_general(n, 3, 45);
  MatD c(n, n, 7.0);
  syrk(Uplo::Lower, Trans::NoTrans, 1.0, a.const_view(), 0.0, c.view());
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(c(i, j), 7.0);
}

}  // namespace
}  // namespace ftla::blas

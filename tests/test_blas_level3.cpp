// Level-3 BLAS tests: parameterized sweeps against naive references for
// gemm (all transpose combos), trsm and trmm (all 16 variants each), and
// syrk (both uplo/trans combos).

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "blas/level3.hpp"
#include "blas/pack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace ftla::blas {
namespace {

MatD naive_gemm(Trans ta, Trans tb, double alpha, const MatD& a, const MatD& b, double beta,
                MatD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = ta == Trans::NoTrans ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = ta == Trans::NoTrans ? a(i, p) : a(p, i);
        const double bv = tb == Trans::NoTrans ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
  return c;
}

/// Builds the dense matrix representing the `uplo`/`diag` triangle of a.
MatD dense_triangle(const MatD& a, Uplo uplo, Diag diag) {
  const index_t n = a.rows();
  MatD t(n, n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) t(i, j) = (i == j && diag == Diag::Unit) ? 1.0 : a(i, j);
    }
  }
  return t;
}

using GemmParam = std::tuple<int, int, int, int, int, double, double>;  // m n k ta tb alpha beta

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, tai, tbi, alpha, beta] = GetParam();
  const auto ta = tai ? Trans::Trans : Trans::NoTrans;
  const auto tb = tbi ? Trans::Trans : Trans::NoTrans;
  const MatD a = ta == Trans::NoTrans ? random_general(m, k, 1) : random_general(k, m, 1);
  const MatD b = tb == Trans::NoTrans ? random_general(k, n, 2) : random_general(n, k, 2);
  MatD c = random_general(m, n, 3);

  MatD expect = naive_gemm(ta, tb, alpha, a, b, beta, c);
  gemm(ta, tb, alpha, a.const_view(), b.const_view(), beta, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-11 * (1.0 + static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(
        GemmParam{1, 1, 1, 0, 0, 1.0, 0.0}, GemmParam{5, 7, 3, 0, 0, 1.0, 1.0},
        GemmParam{16, 16, 16, 0, 0, -1.0, 1.0}, GemmParam{33, 17, 29, 0, 0, 2.5, -0.5},
        GemmParam{8, 8, 8, 1, 0, 1.0, 0.0}, GemmParam{13, 11, 9, 1, 0, -2.0, 1.0},
        GemmParam{8, 8, 8, 0, 1, 1.0, 0.0}, GemmParam{13, 11, 9, 0, 1, 1.0, 0.5},
        GemmParam{8, 8, 8, 1, 1, 1.0, 0.0}, GemmParam{13, 11, 9, 1, 1, -1.5, 2.0},
        GemmParam{2, 64, 512, 0, 0, 1.0, 0.0},   // checksum-encoding shape
        GemmParam{64, 2, 512, 1, 0, 1.0, 0.0},   // row-checksum shape
        GemmParam{100, 100, 100, 0, 0, 1.0, 1.0},
        GemmParam{7, 5, 0, 0, 0, 1.0, 2.0}));    // k = 0: pure scaling

TEST(Gemm, LargeTriggersThreadedPathAndMatches) {
  const index_t n = 160;  // above the parallel flop threshold
  const MatD a = random_general(n, n, 10);
  const MatD b = random_general(n, n, 11);
  MatD c1(n, n, 0.0);
  MatD c2(n, n, 0.0);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c1.view());
  gemm_seq(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0,
           c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-12);
}

TEST(Gemm, DimensionMismatchThrows) {
  MatD a(3, 4);
  MatD b(5, 2);
  MatD c(3, 2);
  EXPECT_THROW(
      gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c.view()),
      FtlaError);
}

TEST(Gemm, BetaZeroOverwritesNaN) {
  // beta == 0 must ignore prior contents, including NaN (BLAS semantics).
  MatD a = identity(2);
  MatD b = identity(2);
  MatD c(2, 2, std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c.view());
  EXPECT_TRUE(approx_equal(c.view(), identity(2).view(), 0.0));
}

using TriParam = std::tuple<int, int, int, int>;  // side uplo trans diag

class TrsmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrsmSweep, SolveRoundTrip) {
  const auto [si, ui, ti, di] = GetParam();
  const auto side = si ? Side::Right : Side::Left;
  const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
  const auto trans = ti ? Trans::Trans : Trans::NoTrans;
  const auto diag = di ? Diag::Unit : Diag::NonUnit;

  const index_t m = 9;
  const index_t n = 6;
  const index_t asz = side == Side::Left ? m : n;
  MatD a = random_general(asz, asz, 21, 0.5, 1.5);  // diag bounded away from 0
  const MatD x = random_general(m, n, 22);

  // B = op(tri(A)) · X  (or X · op(tri(A))) computed densely.
  const MatD tri = dense_triangle(a, uplo, diag);
  MatD b(m, n, 0.0);
  if (side == Side::Left) {
    b = naive_gemm(trans, Trans::NoTrans, 1.0, tri, x, 0.0, b);
  } else {
    b = naive_gemm(Trans::NoTrans, trans, 1.0, x, tri, 0.0, b);
  }

  trsm(side, uplo, trans, diag, 1.0, a.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), x.view()), 1e-9)
      << to_string(side) << to_string(uplo) << to_string(trans) << to_string(diag);
}

class TrmmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrmmSweep, MatchesDenseMultiply) {
  const auto [si, ui, ti, di] = GetParam();
  const auto side = si ? Side::Right : Side::Left;
  const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
  const auto trans = ti ? Trans::Trans : Trans::NoTrans;
  const auto diag = di ? Diag::Unit : Diag::NonUnit;

  const index_t m = 8;
  const index_t n = 5;
  const index_t asz = side == Side::Left ? m : n;
  MatD a = random_general(asz, asz, 31);
  MatD b = random_general(m, n, 32);

  const MatD tri = dense_triangle(a, uplo, diag);
  MatD expect(m, n, 0.0);
  if (side == Side::Left) {
    expect = naive_gemm(trans, Trans::NoTrans, 1.5, tri, b, 0.0, expect);
  } else {
    expect = naive_gemm(Trans::NoTrans, trans, 1.5, b, tri, 0.0, expect);
  }

  trmm(side, uplo, trans, diag, 1.5, a.const_view(), b.view());
  EXPECT_LT(max_abs_diff(b.view(), expect.view()), 1e-12)
      << to_string(side) << to_string(uplo) << to_string(trans) << to_string(diag);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TrsmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));
INSTANTIATE_TEST_SUITE_P(AllVariants, TrmmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Syrk, LowerNoTransMatchesGemm) {
  const index_t n = 10;
  const index_t k = 6;
  const MatD a = random_general(n, k, 41);
  MatD c = random_symmetric(n, 42);
  MatD expect = naive_gemm(Trans::NoTrans, Trans::Trans, -1.0, a, a, 1.0, c);
  syrk(Uplo::Lower, Trans::NoTrans, -1.0, a.const_view(), 1.0, c.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
}

TEST(Syrk, UpperTransMatchesGemm) {
  const index_t n = 7;
  const index_t k = 9;
  const MatD a = random_general(k, n, 43);  // op(A) = Aᵀ is n×k
  MatD c = random_symmetric(n, 44);
  MatD expect = naive_gemm(Trans::Trans, Trans::NoTrans, 2.0, a, a, 0.5, c);
  syrk(Uplo::Upper, Trans::Trans, 2.0, a.const_view(), 0.5, c.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), expect(i, j), 1e-12);
}

TEST(Syrk, LeavesOppositeTriangleUntouched) {
  const index_t n = 5;
  const MatD a = random_general(n, 3, 45);
  MatD c(n, n, 7.0);
  syrk(Uplo::Lower, Trans::NoTrans, 1.0, a.const_view(), 0.0, c.view());
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(c(i, j), 7.0);
}

// ---------------------------------------------------------------------
// Packed-kernel property tests: the blocked paths against their scalar
// *_seq oracles at shapes straddling every blocking parameter edge
// (kMR, kNR, kMC, kKC, kNC and the trsm/syrk block sizes), on strided
// sub-views, and across all variant combinations.
// ---------------------------------------------------------------------

/// A triangular operand whose solves stay well conditioned under both
/// Diag modes: off-diagonal entries shrunk to O(1/n) — Unit solves see
/// I + N with ‖N‖ small — and the diagonal pushed far from zero for
/// NonUnit. Ill-conditioned operands would amplify the (legitimate)
/// rounding differences between the blocked and scalar summation
/// orders past any meaningful tolerance.
MatD boosted_diag(index_t n, std::uint64_t seed) {
  MatD a = random_general(n, n, seed);
  const double scale = 1.0 / static_cast<double>(n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) *= scale;
  for (index_t i = 0; i < n; ++i) a(i, i) += 2.0;
  return a;
}

TEST(PackedGemm, BlockingEdgeShapesMatchOracle) {
  // One-off and ±1 around each blocking parameter; every value crosses
  // a packing tail (kMR = 8, kNR = 4), an A-block edge (kMC = 128), a
  // k-panel edge (kKC = 256) or a B-panel edge (kNC = 512).
  const std::vector<index_t> edges_m = {1, kMR - 1, kMR, kMR + 1, kMC - 1, kMC + 1};
  const std::vector<index_t> edges_n = {1, kNR - 1, kNR + 1, 67};
  const std::vector<index_t> edges_k = {1, 7, kKC - 1, kKC, kKC + 1};
  for (int tai = 0; tai < 2; ++tai) {
    for (int tbi = 0; tbi < 2; ++tbi) {
      const auto ta = tai ? Trans::Trans : Trans::NoTrans;
      const auto tb = tbi ? Trans::Trans : Trans::NoTrans;
      for (index_t m : edges_m) {
        for (index_t n : edges_n) {
          for (index_t k : edges_k) {
            const MatD a =
                ta == Trans::NoTrans ? random_general(m, k, 1) : random_general(k, m, 1);
            const MatD b =
                tb == Trans::NoTrans ? random_general(k, n, 2) : random_general(n, k, 2);
            MatD c = random_general(m, n, 3);
            MatD expect = c;
            gemm_seq(ta, tb, 1.25, a.const_view(), b.const_view(), -0.5, expect.view());
            gemm(ta, tb, 1.25, a.const_view(), b.const_view(), -0.5, c.view());
            EXPECT_LT(max_abs_diff(c.view(), expect.view()),
                      1e-12 * (1.0 + static_cast<double>(k)))
                << "ta=" << tai << " tb=" << tbi << " m=" << m << " n=" << n << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(PackedGemm, WidePanelCrossesNcEdgeAndMatchesOracle) {
  // n past kNC exercises the outer jc loop with a ragged final panel.
  const index_t m = 40;
  const index_t n = kNC + 3;
  const index_t k = 33;
  const MatD a = random_general(m, k, 4);
  const MatD b = random_general(k, n, 5);
  MatD c = random_general(m, n, 6);
  MatD expect = c;
  gemm_seq(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 1.0,
           expect.view());
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 1.0, c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-12 * (1.0 + static_cast<double>(k)));
}

TEST(PackedGemm, StridedSubViewsMatchOracle) {
  // The packers must honour the parent's leading dimension: operands and
  // destination are interior blocks of larger matrices.
  const index_t m = 133;
  const index_t n = 71;
  const index_t k = 259;
  MatD pa = random_general(m + 9, k + 7, 7);
  MatD pb = random_general(n + 5, k + 4, 8);  // holds op(B) = Bᵀ
  MatD pc1 = random_general(m + 6, n + 8, 9);
  MatD pc2 = pc1;
  const auto av = pa.const_view().block(2, 3, m, k);
  const auto bv = pb.const_view().block(1, 2, n, k);
  gemm_seq(Trans::NoTrans, Trans::Trans, -2.0, av, bv, 0.75,
           pc2.view().block(4, 1, m, n));
  gemm(Trans::NoTrans, Trans::Trans, -2.0, av, bv, 0.75, pc1.view().block(4, 1, m, n));
  EXPECT_LT(max_abs_diff(pc1.view(), pc2.view()), 1e-12 * (1.0 + static_cast<double>(k)));
}

TEST(PackedGemm, RepeatedRunsAreBitwiseIdentical) {
  // Parallelism only partitions disjoint C tiles; per-element summation
  // order is fixed by the sequential jc/pc loops and the microkernel's
  // k-order, so a rerun on the same inputs must agree to the last bit.
  const index_t n = 192;  // above the threaded threshold
  const MatD a = random_general(n, n, 10);
  const MatD b = random_general(n, n, 11);
  MatD c1(n, n, 0.0);
  MatD c2(n, n, 0.0);
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c1.view());
  gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0, c2.view());
  EXPECT_EQ(max_abs_diff(c1.view(), c2.view()), 0.0);
}

class BlockedTrsmSweep : public ::testing::TestWithParam<TriParam> {};

TEST_P(BlockedTrsmSweep, MatchesScalarOracleAcrossBlockEdges) {
  const auto [si, ui, ti, di] = GetParam();
  const auto side = si ? Side::Right : Side::Left;
  const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
  const auto trans = ti ? Trans::Trans : Trans::NoTrans;
  const auto diag = di ? Diag::Unit : Diag::NonUnit;

  // Triangular sizes straddling the kTrsmBlock = 64 diagonal block and
  // large enough (with the paired dimension) to take the blocked path.
  for (index_t tri : {index_t{63}, index_t{64}, index_t{65}, index_t{200}}) {
    const index_t other = 130;
    const index_t m = side == Side::Left ? tri : other;
    const index_t n = side == Side::Left ? other : tri;
    const MatD a = boosted_diag(tri, 21);
    const MatD b0 = random_general(m, n, 22);
    MatD fast = b0;
    MatD oracle = b0;
    trsm(side, uplo, trans, diag, 1.5, a.const_view(), fast.view());
    trsm_seq(side, uplo, trans, diag, 1.5, a.const_view(), oracle.view());
    EXPECT_LT(max_abs_diff(fast.view(), oracle.view()), 1e-10)
        << to_string(side) << to_string(uplo) << to_string(trans) << to_string(diag)
        << " tri=" << tri;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BlockedTrsmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(BlockedTrsm, StridedSubViewsMatchOracle) {
  const index_t tri = 129;
  const index_t n = 140;
  MatD pa = boosted_diag(tri + 6, 23);
  MatD pb = random_general(tri + 4, n + 3, 24);
  MatD pb2 = pb;
  const auto av = pa.const_view().block(3, 3, tri, tri);
  trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, av,
       pb.view().block(2, 1, tri, n));
  trsm_seq(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, av,
           pb2.view().block(2, 1, tri, n));
  EXPECT_LT(max_abs_diff(pb.view(), pb2.view()), 1e-10);
}

TEST(BlockedSyrk, MatchesScalarOracleAcrossBlockEdges) {
  // n straddles kSyrkBlock = 128 (diagonal-tile tails) and k straddles
  // kKC = 256 inside the per-tile gemm.
  for (int ui = 0; ui < 2; ++ui) {
    for (int ti = 0; ti < 2; ++ti) {
      const auto uplo = ui ? Uplo::Upper : Uplo::Lower;
      const auto trans = ti ? Trans::Trans : Trans::NoTrans;
      for (index_t n : {index_t{127}, index_t{129}, index_t{260}}) {
        for (index_t k : {index_t{64}, index_t{257}}) {
          const MatD a =
              trans == Trans::NoTrans ? random_general(n, k, 31) : random_general(k, n, 31);
          MatD fast = random_general(n, n, 32);
          MatD oracle = fast;
          syrk(uplo, trans, -1.0, a.const_view(), 0.5, fast.view());
          syrk_seq(uplo, trans, -1.0, a.const_view(), 0.5, oracle.view());
          EXPECT_LT(max_abs_diff(fast.view(), oracle.view()),
                    1e-12 * (1.0 + static_cast<double>(k)))
              << to_string(uplo) << to_string(trans) << " n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(BlockedSyrk, LeavesOppositeTriangleUntouchedAtBlockedSizes) {
  const index_t n = 260;  // well past kSyrkBlock, takes the tiled path
  const MatD a = random_general(n, 300, 33);
  MatD c(n, n, 7.0);
  syrk(Uplo::Lower, Trans::NoTrans, 1.0, a.const_view(), 0.0, c.view());
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i)
      ASSERT_DOUBLE_EQ(c(i, j), 7.0) << "i=" << i << " j=" << j;
}

}  // namespace
}  // namespace ftla::blas

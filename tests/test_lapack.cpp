// LAPACK substrate tests: factorization residuals, blocked-vs-unblocked
// agreement, pivoting, Householder kernels.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "lapack/lapack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace ftla::lapack {
namespace {

using PotrfParam = std::tuple<int, int>;  // n, nb

class PotrfSweep : public ::testing::TestWithParam<PotrfParam> {};

TEST_P(PotrfSweep, ResidualSmall) {
  const auto [n, nb] = GetParam();
  const MatD a = random_spd(n, 100 + n);
  MatD l(a.const_view());
  ASSERT_EQ(potrf(l.view(), nb), 0);
  EXPECT_LT(cholesky_residual(a.const_view(), l.const_view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PotrfSweep,
                         ::testing::Values(PotrfParam{1, 1}, PotrfParam{4, 2},
                                           PotrfParam{16, 4}, PotrfParam{33, 8},
                                           PotrfParam{64, 16}, PotrfParam{100, 32},
                                           PotrfParam{128, 128},   // single block
                                           PotrfParam{96, 100}));  // nb > n

TEST(Potrf, BlockedMatchesUnblocked) {
  const index_t n = 40;
  const MatD a = random_spd(n, 7);
  MatD l1(a.const_view());
  MatD l2(a.const_view());
  ASSERT_EQ(potrf2(l1.view()), 0);
  ASSERT_EQ(potrf(l2.view(), 8), 0);
  // Compare lower triangles only (upper is unspecified workspace).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(l1(i, j), l2(i, j), 1e-11);
}

TEST(Potrf, RejectsIndefinite) {
  MatD a = identity(4);
  a(2, 2) = -1.0;
  EXPECT_EQ(potrf2(a.view()), 3);  // 1-based failing pivot
}

TEST(Potrf, RejectsIndefiniteBlocked) {
  MatD a = identity(10);
  a(7, 7) = -5.0;
  MatD c(a.const_view());
  EXPECT_EQ(potrf(c.view(), 4), 8);
}

using GetrfParam = std::tuple<int, int>;

class GetrfSweep : public ::testing::TestWithParam<GetrfParam> {};

TEST_P(GetrfSweep, PivotedResidualSmall) {
  const auto [n, nb] = GetParam();
  const MatD a = random_general(n, n, 200 + n);
  MatD lu(a.const_view());
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(lu.view(), nb, ipiv), 0);

  // Build PA explicitly and check PA = LU.
  MatD pa(a.const_view());
  laswp(pa.view(), ipiv, 0, static_cast<index_t>(ipiv.size()));
  EXPECT_LT(lu_residual(pa.const_view(), lu.const_view()), 1e-12);
}

TEST_P(GetrfSweep, NoPivotResidualSmallOnDominant) {
  const auto [n, nb] = GetParam();
  const MatD a = random_diag_dominant(n, 300 + n);
  MatD lu(a.const_view());
  ASSERT_EQ(getrf_nopiv(lu.view(), nb), 0);
  EXPECT_LT(lu_residual(a.const_view(), lu.const_view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GetrfSweep,
                         ::testing::Values(GetrfParam{1, 1}, GetrfParam{5, 2},
                                           GetrfParam{16, 4}, GetrfParam{37, 8},
                                           GetrfParam{64, 16}, GetrfParam{100, 25},
                                           GetrfParam{64, 64}, GetrfParam{48, 50}));

TEST(Getrf, PivotingActuallyPivots) {
  // Leading zero forces a swap; no-pivot variant must fail, pivoted must
  // succeed.
  MatD a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  MatD c1(a.const_view());
  EXPECT_NE(getrf_nopiv(c1.view(), 1), 0);
  MatD c2(a.const_view());
  std::vector<index_t> ipiv;
  EXPECT_EQ(getrf(c2.view(), 1, ipiv), 0);
  EXPECT_EQ(ipiv[0], 1);
}

TEST(Getrf, BlockedMatchesUnblockedNoPivot) {
  const index_t n = 32;
  const MatD a = random_diag_dominant(n, 5);
  MatD l1(a.const_view());
  MatD l2(a.const_view());
  ASSERT_EQ(getrf2_nopiv(l1.view()), 0);
  ASSERT_EQ(getrf_nopiv(l2.view(), 8), 0);
  EXPECT_LT(max_abs_diff(l1.const_view(), l2.const_view()), 1e-11);
}

TEST(Getrf, RectangularPanel) {
  const index_t m = 12;
  const index_t n = 4;
  const MatD a = random_general(m, n, 8, 0.5, 1.5);
  MatD lu(a.const_view());
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf2(lu.view(), ipiv), 0);
  EXPECT_EQ(ipiv.size(), 4u);
  // Multipliers bounded by 1 in magnitude (partial pivoting guarantee).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < m; ++i) EXPECT_LE(std::abs(lu(i, j)), 1.0 + 1e-15);
}

TEST(Larfg, AnnihilatesVector) {
  // H [alpha; x] should equal [beta; 0] with |beta| = ‖[alpha; x]‖₂.
  std::vector<double> x{3.0, 4.0};
  double alpha = 0.0;
  const double norm_before = 5.0;  // ‖[0,3,4]‖
  const double tau = larfg(3, alpha, x.data(), 1);
  EXPECT_GT(tau, 0.0);
  EXPECT_NEAR(std::abs(alpha), norm_before, 1e-14);
}

TEST(Larfg, ZeroTailGivesZeroTau) {
  std::vector<double> x{0.0, 0.0};
  double alpha = 2.5;
  EXPECT_DOUBLE_EQ(larfg(3, alpha, x.data(), 1), 0.0);
  EXPECT_DOUBLE_EQ(alpha, 2.5);
}

using GeqrfParam = std::tuple<int, int, int>;  // m, n, nb

class GeqrfSweep : public ::testing::TestWithParam<GeqrfParam> {};

TEST_P(GeqrfSweep, QrResidualAndOrthogonality) {
  const auto [m, n, nb] = GetParam();
  const MatD a = random_general(m, n, 400 + m + n);
  MatD f(a.const_view());
  std::vector<double> tau;
  geqrf(f.view(), nb, tau);

  const MatD q = orgqr(f.const_view(), tau, nb);
  const MatD r = extract_r(f.const_view());
  EXPECT_LT(qr_residual(a.const_view(), q.const_view(), r.const_view()), 1e-13);
  EXPECT_LT(orthogonality_residual(q.const_view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfSweep,
                         ::testing::Values(GeqrfParam{1, 1, 1}, GeqrfParam{8, 8, 4},
                                           GeqrfParam{20, 12, 4}, GeqrfParam{33, 33, 8},
                                           GeqrfParam{64, 48, 16}, GeqrfParam{50, 50, 50},
                                           GeqrfParam{40, 40, 64},  // nb > n
                                           GeqrfParam{96, 64, 16}));

TEST(Geqrf, BlockedMatchesUnblocked) {
  const index_t m = 24;
  const index_t n = 16;
  const MatD a = random_general(m, n, 12);
  MatD f1(a.const_view());
  MatD f2(a.const_view());
  std::vector<double> tau1;
  std::vector<double> tau2;
  geqrf2(f1.view(), tau1);
  geqrf(f2.view(), 4, tau2);
  EXPECT_LT(max_abs_diff(f1.const_view(), f2.const_view()), 1e-12);
  for (std::size_t i = 0; i < tau1.size(); ++i) EXPECT_NEAR(tau1[i], tau2[i], 1e-12);
}

TEST(Larft, BlockReflectorEqualsProductOfReflectors) {
  // I - V·T·Vᵀ must equal H1·H2···Hk applied to a probe matrix.
  const index_t m = 10;
  const index_t k = 4;
  const MatD a = random_general(m, k, 77);
  MatD f(a.const_view());
  std::vector<double> tau;
  geqrf2(f.view(), tau);

  MatD t(k, k);
  larft(f.const_view(), tau, t.view());

  // Probe: apply via larfb (NoTrans) to the identity.
  MatD probe = identity(m);
  larfb(false, f.const_view(), t.const_view(), probe.view());

  // Apply reflectors one at a time, right-to-left (Hk first): Q·I.
  MatD expect = identity(m);
  for (index_t j = k - 1; j >= 0; --j) {
    // H_j = I - tau_j v vᵀ, v = [0..0, 1, f(j+1:, j)].
    std::vector<double> v(m, 0.0);
    v[j] = 1.0;
    for (index_t i = j + 1; i < m; ++i) v[i] = f(i, j);
    for (index_t c = 0; c < m; ++c) {
      double dot = 0.0;
      for (index_t i = 0; i < m; ++i) dot += v[i] * expect(i, c);
      const double t_dot = tau[static_cast<std::size_t>(j)] * dot;
      for (index_t i = 0; i < m; ++i) expect(i, c) -= t_dot * v[i];
    }
  }
  EXPECT_LT(max_abs_diff(probe.const_view(), expect.const_view()), 1e-13);
}

TEST(Larfb, TransIsInverseOfNoTrans) {
  const index_t m = 12;
  const index_t k = 4;
  MatD f = random_general(m, k, 55);
  std::vector<double> tau;
  geqrf2(f.view(), tau);
  MatD t(k, k);
  larft(f.const_view(), tau, t.view());

  const MatD c0 = random_general(m, 6, 56);
  MatD c(c0.const_view());
  larfb(false, f.const_view(), t.const_view(), c.view());  // Q·C
  larfb(true, f.const_view(), t.const_view(), c.view());   // Qᵀ·Q·C = C
  EXPECT_LT(max_abs_diff(c.const_view(), c0.const_view()), 1e-12);
}

TEST(ExtractR, UpperTriangularOnly) {
  MatD a = random_general(6, 4, 66);
  const MatD r = extract_r(a.const_view());
  EXPECT_EQ(r.rows(), 4);
  EXPECT_EQ(r.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) {
      if (i > j)
        EXPECT_EQ(r(i, j), 0.0);
      else
        EXPECT_EQ(r(i, j), a(i, j));
    }
}

}  // namespace
}  // namespace ftla::lapack

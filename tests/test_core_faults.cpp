// Fault-injection integration tests: the behaviours behind Table VIII.
// Each test schedules exactly one fault (paper §X.A) and asserts the
// campaign classification. The headline contrasts:
//   * full checksum + new scheme recovers from every fault class here;
//   * single-side checksum misses PU-update and TMU 1D-propagation
//     faults;
//   * the post-op scheme lets PCIe corruption of the owner's panel
//     reach the final result, the new scheme corrects it at receivers.

#include <gtest/gtest.h>

#include "core/campaign.hpp"

namespace ftla::core {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::OpKind;
using fault::OpSite;
using fault::Part;
using fault::Timing;

constexpr index_t kN = 96;
constexpr index_t kNb = 16;

CampaignConfig make_config(Decomp decomp, ChecksumKind cs, SchemeKind scheme,
                           int ngpu = 2) {
  CampaignConfig cfg;
  cfg.decomp = decomp;
  cfg.n = kN;
  cfg.opts.nb = kNb;
  cfg.opts.ngpu = ngpu;
  cfg.opts.checksum = cs;
  cfg.opts.scheme = scheme;
  return cfg;
}

FaultSpec spec_at(FaultType type, OpKind op, index_t iter, index_t br, index_t bc,
                  Part part = Part::Update, Timing timing = Timing::DuringOp) {
  FaultSpec s;
  s.type = type;
  s.site = OpSite{iter, op};
  s.part = part;
  s.timing = timing;
  s.target_br = br;
  s.target_bc = bc;
  s.seed = 12345;
  return s;
}

bool is_corrected(Outcome o) {
  return o == Outcome::CorrectedAbft || o == Outcome::CorrectedRestart;
}

bool is_failure(Outcome o) {
  return o == Outcome::WrongResult || o == Outcome::DetectedUnrecoverable;
}

// ---------------------------------------------------------------------
// Full checksum + new scheme: the complete fault battery must recover.
// ---------------------------------------------------------------------

struct BatteryCase {
  const char* name;
  FaultSpec spec;
};

class LuFullNewBattery : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(LuFullNewBattery, Recovers) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(GetParam().spec);
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultClasses, LuFullNewBattery,
    ::testing::Values(
        BatteryCase{"comp_pd", spec_at(FaultType::Computation, OpKind::PD, 1, 1, 1)},
        BatteryCase{"comp_pu", spec_at(FaultType::Computation, OpKind::PU, 1, 1, 2)},
        BatteryCase{"comp_tmu", spec_at(FaultType::Computation, OpKind::TMU, 1, 2, 3)},
        BatteryCase{"dram_between_pd_ref",
                    spec_at(FaultType::MemoryDram, OpKind::PD, 1, 3, 1, Part::Reference,
                            Timing::BetweenOps)},
        BatteryCase{"dram_between_pu_upd",
                    spec_at(FaultType::MemoryDram, OpKind::PU, 1, 1, 2, Part::Update,
                            Timing::BetweenOps)},
        BatteryCase{"dram_between_tmu_upd",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 3, 2, Part::Update,
                            Timing::BetweenOps)},
        BatteryCase{"dram_during_tmu_ref_L",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 2, 1, Part::Reference)},
        BatteryCase{"dram_during_tmu_ref_U",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 1, 2, Part::Reference)},
        BatteryCase{"onchip_tmu_ref_U",
                    spec_at(FaultType::MemoryOnChip, OpKind::TMU, 1, 1, 2,
                            Part::Reference)},
        BatteryCase{"onchip_tmu_ref_L",
                    spec_at(FaultType::MemoryOnChip, OpKind::TMU, 1, 2, 1,
                            Part::Reference)},
        BatteryCase{"onchip_pu_ref",
                    spec_at(FaultType::MemoryOnChip, OpKind::PU, 1, 1, 1,
                            Part::Reference)}),
    [](const ::testing::TestParamInfo<BatteryCase>& tpi) { return tpi.param.name; });

// ---------------------------------------------------------------------
// PD faults always end in a local restart (Table VIII: "R" for ⊠ at PD).
// ---------------------------------------------------------------------

TEST(LuFaults, PdComputationNeedsLocalRestart) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result =
      campaign.run(spec_at(FaultType::Computation, OpKind::PD, 2, 2, 2));
  EXPECT_EQ(result.outcome, Outcome::CorrectedRestart) << result.summary();
  EXPECT_GE(result.stats.local_restarts, 1u);
}

TEST(LuFaults, PdDramBetweenOpsIsCheapCorrection) {
  // A memory error caught by the pre-PD check is a 0D fix, no restart.
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(spec_at(FaultType::MemoryDram, OpKind::PD, 1, 2, 1,
                                           Part::Reference, Timing::BetweenOps));
  EXPECT_EQ(result.outcome, Outcome::CorrectedAbft) << result.summary();
  EXPECT_EQ(result.stats.local_restarts, 0u);
}

// ---------------------------------------------------------------------
// Single-side gaps (Table VIII "N" cells).
// ---------------------------------------------------------------------

TEST(LuFaults, SingleSideMissesPuComputationError) {
  // The updated row panel carries no checksum in the single-side layout:
  // a computation error there reaches the final result.
  Campaign single(make_config(Decomp::Lu, ChecksumKind::SingleSide, SchemeKind::PostOp));
  const auto bad = single.run(spec_at(FaultType::Computation, OpKind::PU, 1, 1, 2));
  EXPECT_TRUE(is_failure(bad.outcome)) << bad.summary();

  Campaign full(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::PostOp));
  const auto good = full.run(spec_at(FaultType::Computation, OpKind::PU, 1, 1, 2));
  EXPECT_TRUE(is_corrected(good.outcome)) << good.summary();
}

TEST(LuFaults, SingleSideMissesUSideDramPropagation) {
  // A DRAM error in U during TMU propagates down one column; column
  // checksums were maintained from the same corrupted U, so the
  // single-side layout cannot see it. Full checksum reconstructs the
  // column from the independent row checksums.
  const auto spec =
      spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 1, 2, Part::Reference);

  Campaign single(make_config(Decomp::Lu, ChecksumKind::SingleSide, SchemeKind::NewScheme));
  const auto bad = single.run(spec);
  EXPECT_TRUE(is_failure(bad.outcome)) << bad.summary();

  Campaign full(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto good = full.run(spec);
  EXPECT_TRUE(is_corrected(good.outcome)) << good.summary();
}

TEST(LuFaults, SingleSideMissesOnChipUPropagation) {
  const auto spec =
      spec_at(FaultType::MemoryOnChip, OpKind::TMU, 1, 1, 2, Part::Reference);
  Campaign single(make_config(Decomp::Lu, ChecksumKind::SingleSide, SchemeKind::NewScheme));
  EXPECT_TRUE(is_failure(single.run(spec).outcome));
  Campaign full(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  EXPECT_TRUE(is_corrected(full.run(spec).outcome));
}

// ---------------------------------------------------------------------
// PCIe protection (§VII.C): the new scheme corrects at receivers; the
// post-op scheme lets owner-side corruption freeze into the result.
// ---------------------------------------------------------------------

TEST(LuFaults, PcieToNonOwnerCorrectedByNewScheme) {
  auto spec = spec_at(FaultType::Pcie, OpKind::BroadcastH2D, 1, 1, 1);
  spec.target_gpu = 0;  // owner of block column 1 is GPU 1 (1 mod 2)
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(spec);
  EXPECT_EQ(result.outcome, Outcome::CorrectedAbft) << result.summary();
  EXPECT_GE(result.stats.comm_errors_corrected, 1u);
}

TEST(LuFaults, PcieToOwnerNewSchemeVsPostScheme) {
  auto spec = spec_at(FaultType::Pcie, OpKind::BroadcastH2D, 1, 1, 1);
  spec.target_gpu = 1;  // the owner: its copy is written back as output

  Campaign ours(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto good = ours.run(spec);
  EXPECT_TRUE(is_corrected(good.outcome)) << good.summary();

  Campaign post(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::PostOp));
  const auto bad = post.run(spec);
  EXPECT_TRUE(is_failure(bad.outcome)) << bad.summary();
}

TEST(LuFaults, PcieOnPanelFetchCorrectedByPrePdCheck) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(spec_at(FaultType::Pcie, OpKind::PD, 2, 2, 2));
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
}

// ---------------------------------------------------------------------
// Recovery cost: ABFT corrections must be far cheaper than the run.
// ---------------------------------------------------------------------

TEST(LuFaults, AbftCorrectionOverheadIsSmall) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result =
      campaign.run(spec_at(FaultType::Computation, OpKind::TMU, 1, 2, 3));
  ASSERT_TRUE(is_corrected(result.outcome));
  // §VII.C promises < 1% recovery overhead; allow generous slack for the
  // tiny problem sizes used in tests.
  EXPECT_LT(result.stats.recovery_seconds,
            0.25 * result.stats.total_seconds + 1e-3);
}

// ---------------------------------------------------------------------
// Cholesky and QR: the same machinery holds.
// ---------------------------------------------------------------------

class CholFullNewBattery : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(CholFullNewBattery, Recovers) {
  Campaign campaign(
      make_config(Decomp::Cholesky, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(GetParam().spec);
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultClasses, CholFullNewBattery,
    ::testing::Values(
        BatteryCase{"comp_pd", spec_at(FaultType::Computation, OpKind::PD, 1, 1, 1)},
        BatteryCase{"comp_pu", spec_at(FaultType::Computation, OpKind::PU, 1, 2, 1)},
        BatteryCase{"comp_tmu", spec_at(FaultType::Computation, OpKind::TMU, 1, 3, 2)},
        BatteryCase{"dram_between_pd",
                    spec_at(FaultType::MemoryDram, OpKind::PD, 1, 1, 1, Part::Reference,
                            Timing::BetweenOps)},
        BatteryCase{"dram_between_pu_upd",
                    spec_at(FaultType::MemoryDram, OpKind::PU, 1, 2, 1, Part::Update,
                            Timing::BetweenOps)},
        BatteryCase{"dram_during_tmu_ref",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 3, 1, Part::Reference)},
        BatteryCase{"onchip_tmu_ref",
                    spec_at(FaultType::MemoryOnChip, OpKind::TMU, 1, 3, 1,
                            Part::Reference)},
        BatteryCase{"onchip_pu_ref",
                    spec_at(FaultType::MemoryOnChip, OpKind::PU, 1, 1, 1,
                            Part::Reference)}),
    [](const ::testing::TestParamInfo<BatteryCase>& tpi) { return tpi.param.name; });

TEST(CholFaults, PcieD2DBroadcastCorrected) {
  auto spec = spec_at(FaultType::Pcie, OpKind::BroadcastD2D, 1, 1, 1);
  spec.target_gpu = 0;  // receiver (owner of column 1 is GPU 1)
  Campaign campaign(
      make_config(Decomp::Cholesky, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(spec);
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
  EXPECT_GE(result.stats.comm_errors_corrected, 1u);
}

class QrFullNewBattery : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(QrFullNewBattery, Recovers) {
  Campaign campaign(make_config(Decomp::Qr, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(GetParam().spec);
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultClasses, QrFullNewBattery,
    ::testing::Values(
        BatteryCase{"comp_pd", spec_at(FaultType::Computation, OpKind::PD, 1, 1, 1)},
        BatteryCase{"comp_ctf", spec_at(FaultType::Computation, OpKind::CTF, 1, 1, 1)},
        BatteryCase{"comp_tmu", spec_at(FaultType::Computation, OpKind::TMU, 1, 1, 3)},
        BatteryCase{"dram_between_pd",
                    spec_at(FaultType::MemoryDram, OpKind::PD, 1, 2, 1, Part::Reference,
                            Timing::BetweenOps)},
        BatteryCase{"dram_between_tmu_upd",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 1, 2, Part::Update,
                            Timing::BetweenOps)},
        BatteryCase{"dram_between_tmu_ref_v",
                    spec_at(FaultType::MemoryDram, OpKind::TMU, 1, 2, 1, Part::Reference,
                            Timing::BetweenOps)}),
    [](const ::testing::TestParamInfo<BatteryCase>& tpi) { return tpi.param.name; });

TEST(QrFaults, CtfErrorFixedByRecompute) {
  Campaign campaign(make_config(Decomp::Qr, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result =
      campaign.run(spec_at(FaultType::Computation, OpKind::CTF, 2, 2, 2));
  EXPECT_EQ(result.outcome, Outcome::CorrectedAbft) << result.summary();
}

TEST(QrFaults, PcieBroadcastCorrected) {
  auto spec = spec_at(FaultType::Pcie, OpKind::BroadcastH2D, 1, 1, 1);
  spec.target_gpu = 0;
  Campaign campaign(make_config(Decomp::Qr, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto result = campaign.run(spec);
  EXPECT_TRUE(is_corrected(result.outcome)) << result.summary();
}

// ---------------------------------------------------------------------
// Baseline: with no checksums every fault reaches the result.
// ---------------------------------------------------------------------

TEST(BaselineFaults, NoProtectionMeansWrongResult) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::None, SchemeKind::NewScheme));
  const auto result =
      campaign.run(spec_at(FaultType::Computation, OpKind::TMU, 1, 2, 3));
  EXPECT_EQ(result.outcome, Outcome::WrongResult) << result.summary();
}

TEST(Campaign, UntriggeredFaultIsReported) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  // Iteration 99 never executes for b = 6.
  const auto result =
      campaign.run(spec_at(FaultType::Computation, OpKind::TMU, 99, 2, 3));
  EXPECT_EQ(result.outcome, Outcome::FaultNotTriggered);
}

TEST(Campaign, ReferenceIsCachedAndClean) {
  Campaign campaign(make_config(Decomp::Lu, ChecksumKind::Full, SchemeKind::NewScheme));
  const auto& ref1 = campaign.reference();
  const auto& ref2 = campaign.reference();
  EXPECT_EQ(&ref1, &ref2);
  EXPECT_EQ(ref1.stats.errors_detected, 0u);
}

}  // namespace
}  // namespace ftla::core

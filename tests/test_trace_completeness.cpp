// Trace-completeness contract for the sync-captured recorder: every FT
// driver, at 1/2/4 devices, must emit a trace in which every raw
// LinkTransfer is paired with exactly one annotated TransferArrive (via
// the shared sync id), every SyncWait acquires an id some SyncSignal
// released earlier, and the happens-before analyzer accepts the whole
// thing. Plus negative cases proving the analyzer rejects traces that
// violate those invariants.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/hb.hpp"
#include "analysis/hb_lint.hpp"
#include "analysis/lint.hpp"
#include "analysis/taskgraph/extract.hpp"
#include "analysis/taskgraph/refine.hpp"
#include "trace/recorder.hpp"
#include "trace/trace.hpp"

namespace ftla::analysis {
namespace {

using trace::EventKind;
using trace::Trace;
using trace::TraceEvent;

struct CompletenessCase {
  std::string algorithm;
  int ngpu;
};

class TraceCompleteness
    : public ::testing::TestWithParam<CompletenessCase> {};

/// One sync-captured dry run of the parameterized driver configuration.
Trace record(const CompletenessCase& p) {
  LintCase c;
  c.algorithm = p.algorithm;
  c.scheme = core::SchemeKind::NewScheme;
  c.ngpu = p.ngpu;
  c.n = 128;
  c.nb = 32;
  const HbLintOutcome o = hb_lint_case(c);
  EXPECT_EQ(o.run_status, core::RunStatus::Success);
  return o.trace;
}

TEST_P(TraceCompleteness, EveryLinkTransferHasExactlyOneArrival) {
  const Trace t = record(GetParam());
  ASSERT_TRUE(t.has_sync);
  ASSERT_TRUE(t.complete);
  std::map<std::uint64_t, int> links;     // sync id -> link count
  std::map<std::uint64_t, int> arrivals;  // sync id -> arrival count
  for (const TraceEvent& e : t.events) {
    if (e.kind == EventKind::LinkTransfer) {
      ASSERT_NE(e.sync_id, 0u) << "unpaired link at seq " << e.seq;
      ++links[e.sync_id];
    } else if (e.kind == EventKind::TransferArrive) {
      ASSERT_NE(e.sync_id, 0u) << "unpaired arrival at seq " << e.seq;
      ++arrivals[e.sync_id];
    }
  }
  ASSERT_FALSE(links.empty());
  EXPECT_EQ(links.size(), arrivals.size());
  for (const auto& [id, n] : links) {
    EXPECT_EQ(n, 1) << "link sync id " << id << " reused";
    EXPECT_EQ(arrivals[id], 1) << "link sync id " << id
                               << " lacks its annotated arrival";
  }
}

TEST_P(TraceCompleteness, EveryWaitHasAPriorSignal) {
  const Trace t = record(GetParam());
  std::map<std::uint64_t, int> signalled;  // id -> signals seen so far
  std::size_t waits = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == EventKind::SyncSignal) {
      ++signalled[e.sync_id];
    } else if (e.kind == EventKind::SyncWait) {
      ++waits;
      EXPECT_GT(signalled[e.sync_id], 0)
          << "wait at seq " << e.seq << " acquires unsignalled id "
          << e.sync_id;
    }
  }
  // Every run forks at least one parallel section per iteration, so a
  // sync-captured trace without waits means the hooks fell off.
  EXPECT_GT(waits, 0u);
}

TEST_P(TraceCompleteness, AnalyzerAcceptsTheTrace) {
  const HbReport r = analyze_hb(record(GetParam()));
  EXPECT_TRUE(r.analyzable);
  EXPECT_TRUE(r.race_free()) << r.sync_findings.front().detail;
  EXPECT_EQ(r.fatal_coverage_count(), 0u);
  EXPECT_EQ(r.link_transfers, r.transfer_arrivals);
  EXPECT_GE(r.contexts, static_cast<std::uint64_t>(GetParam().ngpu) + 1);
}

/// Every sync-captured trace must be a linearization of the task graph
/// extracted from an independent run of the same configuration — the
/// consistency contract between the recorder and the static verifier.
TEST_P(TraceCompleteness, TraceRefinesTheExtractedTaskGraph) {
  const TaskGraph g = extract_graph(record(GetParam()));
  ASSERT_TRUE(g.extracted);
  const RefinementResult r = check_refinement(g, record(GetParam()));
  ASSERT_TRUE(r.checked);
  EXPECT_TRUE(r.pass) << r.detail;
  EXPECT_EQ(r.matched, g.nodes.size());
}

std::vector<CompletenessCase> all_cases() {
  std::vector<CompletenessCase> cases;
  for (const char* algo : {"cholesky", "lu", "qr"}) {
    for (int g : {1, 2, 4}) cases.push_back({algo, g});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Drivers, TraceCompleteness, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<CompletenessCase>& p) {
      return p.param.algorithm + "_" + std::to_string(p.param.ngpu) + "gpu";
    });

// --- malformed traces must be rejected ---------------------------------

Trace base_trace() {
  static const Trace t = record({"lu", 2});
  return t;
}

TEST(TraceRefinementNegative, DroppedVerifyEventBreaksRefinement) {
  const TaskGraph g = extract_graph(base_trace());
  Trace t = base_trace();
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::Verify) {
      t.events.erase(t.events.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const RefinementResult r = check_refinement(g, t);
  ASSERT_TRUE(r.checked);
  EXPECT_FALSE(r.pass);
  EXPECT_FALSE(r.detail.empty());
}

TEST(TraceRefinementNegative, CaptureOffTraceCannotBeChecked) {
  const TaskGraph g = extract_graph(base_trace());
  Trace t = base_trace();
  t.has_sync = false;
  const RefinementResult r = check_refinement(g, t);
  EXPECT_FALSE(r.checked);
  EXPECT_FALSE(r.pass);
}

TEST(TraceCompletenessNegative, DroppedSignalYieldsWaitWithoutSignal) {
  Trace t = base_trace();
  // Remove the first SyncSignal; its waits now acquire a ghost id.
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::SyncSignal) {
      t.events.erase(t.events.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const HbReport r = analyze_hb(t);
  bool flagged = false;
  for (const HbFinding& f : r.sync_findings) {
    flagged |= f.kind == HbFindingKind::WaitWithoutSignal;
  }
  EXPECT_TRUE(flagged);
}

TEST(TraceCompletenessNegative, DroppedArrivalYieldsCountMismatch) {
  Trace t = base_trace();
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::TransferArrive) {
      t.events.erase(t.events.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const HbReport r = analyze_hb(t);
  bool incomplete = false;
  for (const Finding& f : r.coverage_findings) {
    incomplete |= f.kind == FindingKind::TraceIncomplete;
  }
  EXPECT_TRUE(incomplete);
  EXPECT_FALSE(r.clean());
}

TEST(TraceCompletenessNegative, ScrubbedPairingYieldsUnmatchedArrival) {
  Trace t = base_trace();
  for (TraceEvent& e : t.events) {
    if (e.kind == EventKind::TransferArrive) {
      e.sync_id = 0;  // sever the link pairing but keep both events
      break;
    }
  }
  const HbReport r = analyze_hb(t);
  bool flagged = false;
  for (const HbFinding& f : r.sync_findings) {
    flagged |= f.kind == HbFindingKind::UnmatchedArrival;
  }
  EXPECT_TRUE(flagged);
}

TEST(TraceCompletenessNegative, TruncatedTraceIsIncomplete) {
  Trace t = base_trace();
  t.events.resize(t.events.size() / 2);
  t.complete = false;
  const HbReport r = analyze_hb(t);
  bool incomplete = false;
  for (const Finding& f : r.coverage_findings) {
    incomplete |= f.kind == FindingKind::TraceIncomplete;
  }
  EXPECT_TRUE(incomplete);
}

}  // namespace
}  // namespace ftla::analysis

// TSan stress for the dataflow TaskRuntime: hammers concurrent task
// completion and dependency release across {1,2,4} simulated GPUs, plus
// mid-run cancellation and mid-graph abort. Shared state touched by the
// task bodies is deliberately NOT atomic where a dependency edge should
// order it — under ThreadSanitizer (the CI stress job) any missing or
// misfired DepRelease shows up as a data race, so a clean run is
// evidence the runtime's happens-before edges are real.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

#include "runtime/task_runtime.hpp"
#include "sim/system.hpp"

namespace ftla::runtime {
namespace {

class RuntimeStress : public ::testing::TestWithParam<int> {};

// Broadcast / consume / rotate: the host lane writes a per-device tile,
// every GPU lane reads it several times, and the next round's host write
// must wait for all readers (WAR). The round counter and the per-device
// payloads are plain ints — only the inferred RAW and WAR edges order
// them.
TEST_P(RuntimeStress, BroadcastConsumeRotateRounds) {
  const int ngpu = GetParam();
  const int rounds = 60;
  const int consumers = 4;
  sim::HeterogeneousSystem sys(ngpu);
  TaskRuntime rt(sys);

  std::vector<int> payload(static_cast<std::size_t>(ngpu), -1);
  std::vector<std::vector<int>> seen(
      static_cast<std::size_t>(ngpu),
      std::vector<int>(static_cast<std::size_t>(rounds * consumers), -2));

  for (int r = 0; r < rounds; ++r) {
    for (int g = 0; g < ngpu; ++g) {
      rt.submit(kHostLane, r, {Access::out_tile(g, Space::Data, 0, g)},
                [&payload, g, r] { payload[static_cast<std::size_t>(g)] = r; });
    }
    for (int g = 0; g < ngpu; ++g) {
      for (int c = 0; c < consumers; ++c) {
        rt.submit(g, r, {Access::in_tile(g, Space::Data, 0, g)},
                  [&payload, &seen, g, r, c, consumers_ = consumers] {
                    seen[static_cast<std::size_t>(g)]
                        [static_cast<std::size_t>(r * consumers_ + c)] =
                            payload[static_cast<std::size_t>(g)];
                  });
      }
    }
  }
  ASSERT_TRUE(rt.run());
  for (int g = 0; g < ngpu; ++g) {
    for (int r = 0; r < rounds; ++r) {
      for (int c = 0; c < consumers; ++c) {
        ASSERT_EQ(seen[static_cast<std::size_t>(g)]
                      [static_cast<std::size_t>(r * consumers + c)],
                  r)
            << "g=" << g << " r=" << r << " c=" << c;
      }
    }
  }
}

// Fan-in joins: every GPU writes its own tile, a host task reads them
// all, repeatedly — hammers the many-signals-one-waiter path of the
// completion latches.
TEST_P(RuntimeStress, WideFanInJoins) {
  const int ngpu = GetParam();
  const int rounds = 100;
  sim::HeterogeneousSystem sys(ngpu);
  TaskRuntime rt(sys);

  std::vector<long> partial(static_cast<std::size_t>(ngpu), 0);
  std::vector<long> totals(static_cast<std::size_t>(rounds), -1);

  for (int r = 0; r < rounds; ++r) {
    for (int g = 0; g < ngpu; ++g) {
      rt.submit(g, r, {Access::out_tile(g, Space::Data, 1, 0)},
                [&partial, g, r] {
                  partial[static_cast<std::size_t>(g)] += r + g;
                });
    }
    std::vector<Access> acc;
    for (int g = 0; g < ngpu; ++g) acc.push_back(Access::in_tile(g, Space::Data, 1, 0));
    rt.submit(kHostLane, r, acc, [&partial, &totals, r, ngpu] {
      long t = 0;
      for (int g = 0; g < ngpu; ++g) t += partial[static_cast<std::size_t>(g)];
      totals[static_cast<std::size_t>(r)] = t;
    });
  }
  ASSERT_TRUE(rt.run());
  long expect = 0;
  for (int r = 0; r < rounds; ++r) {
    for (int g = 0; g < GetParam(); ++g) expect += r + g;
    ASSERT_EQ(totals[static_cast<std::size_t>(r)], expect) << r;
  }
}

// Cross-lane chains through rotating staging slots: lane g's task reads
// the slot lane g-1 wrote, writes the next one. Slot keys (Space::Phys)
// must serialize reuse exactly like the drivers' lookahead buffers.
TEST_P(RuntimeStress, SlotRotationChains) {
  const int ngpu = GetParam();
  const int steps = 120;
  const index_t slots = 3;
  sim::HeterogeneousSystem sys(ngpu);
  TaskRuntime rt(sys);

  std::vector<int> slot_val(static_cast<std::size_t>(slots), 0);
  int chain = 0;

  for (int s = 0; s < steps; ++s) {
    const int lane = s % ngpu;
    const index_t slot = s % slots;
    const index_t prev = (s + slots - 1) % slots;
    std::vector<Access> acc = {Access::out_slot(0, 0, slot)};
    if (s > 0) acc.push_back(Access::in_slot(0, 0, prev));
    rt.submit(lane, s, acc, [&slot_val, &chain, slot, prev, s] {
      const int incoming =
          s > 0 ? slot_val[static_cast<std::size_t>(prev)] : 0;
      slot_val[static_cast<std::size_t>(slot)] = incoming + 1;
      chain = incoming + 1;
    });
  }
  ASSERT_TRUE(rt.run());
  EXPECT_EQ(chain, steps);
}

// Mid-run cancellation at task granularity: the hook flips after a
// bounded number of polls; the suffix must be skipped while latches
// still open (run() returns, no deadlock), repeatedly at varying points.
TEST_P(RuntimeStress, MidRunCancellationDrains) {
  const int ngpu = GetParam();
  for (int trigger : {1, 7, 23, 61}) {
    sim::HeterogeneousSystem sys(ngpu);
    std::atomic<int> polls{0};
    TaskRuntime::Config cfg;
    cfg.cancel = [&polls, trigger] { return ++polls > trigger; };
    TaskRuntime rt(sys, cfg);

    std::atomic<int> executed{0};
    const int rounds = 40;
    for (int r = 0; r < rounds; ++r) {
      for (int g = 0; g < ngpu; ++g) {
        rt.submit(g, r, {Access::out_tile(g, Space::Data, 2, 0)},
                  [&executed] { ++executed; });
      }
      std::vector<Access> acc;
      for (int g = 0; g < ngpu; ++g) {
        acc.push_back(Access::in_tile(g, Space::Data, 2, 0));
      }
      rt.submit(kHostLane, r, acc, [&executed] { ++executed; });
    }
    EXPECT_FALSE(rt.run());
    EXPECT_TRUE(rt.cancelled());
    EXPECT_LT(executed.load(), rounds * (ngpu + 1));
  }
}

// abort() called from inside a body (the drivers' NeedCompleteRestart
// path): the remaining suffix is skipped, run() reports incomplete, and
// cancelled() stays false.
TEST_P(RuntimeStress, BodyAbortSkipsSuffix) {
  const int ngpu = GetParam();
  sim::HeterogeneousSystem sys(ngpu);
  TaskRuntime rt(sys);

  std::atomic<int> executed{0};
  const int rounds = 50;
  const int abort_at = 17;
  for (int r = 0; r < rounds; ++r) {
    for (int g = 0; g < ngpu; ++g) {
      rt.submit(g, r, {Access::out_tile(g, Space::Data, 3, 0)},
                [&executed, &rt, r, abort_at_ = abort_at] {
                  ++executed;
                  if (r == abort_at_) rt.abort();
                });
    }
  }
  EXPECT_FALSE(rt.run());
  EXPECT_FALSE(rt.cancelled());
  EXPECT_LT(executed.load(), rounds * ngpu);
  // Lanes are independent here, so only the aborting lane is guaranteed
  // to have reached round abort_at before the skip became visible.
  EXPECT_GE(executed.load(), abort_at + 1);
}

// A throwing body must surface from run() after all lanes drained, not
// hang or crash a worker.
TEST_P(RuntimeStress, BodyExceptionPropagates) {
  const int ngpu = GetParam();
  sim::HeterogeneousSystem sys(ngpu);
  TaskRuntime rt(sys);
  for (int r = 0; r < 30; ++r) {
    for (int g = 0; g < ngpu; ++g) {
      rt.submit(g, r, {Access::out_tile(g, Space::Data, 4, 0)}, [r] {
        if (r == 11) throw std::runtime_error("boom");
      });
    }
  }
  EXPECT_THROW(rt.run(), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Gpus, RuntimeStress, ::testing::Values(1, 2, 4));

// Dependency bookkeeping sanity on a mixed graph: same-lane program
// order is implicit (not an edge), cross-lane RAW/WAR edges are deduped.
TEST(RuntimeGraph, EdgeAccounting) {
  sim::HeterogeneousSystem sys(2);
  TaskRuntime rt(sys);
  rt.submit(kHostLane, 0, {Access::out_tile(0, Space::Data, 0, 0)}, [] {});
  rt.submit(kHostLane, 0, {Access::out_tile(0, Space::Data, 0, 0)}, [] {});
  EXPECT_EQ(rt.num_edges(), 0u);  // same lane: program order suffices
  rt.submit(0, 0,
            {Access::in_tile(0, Space::Data, 0, 0),
             Access::in_tile(0, Space::Data, 0, 0)},
            [] {});
  EXPECT_EQ(rt.num_edges(), 1u);  // duplicate In deduped
  rt.submit(1, 0, {Access::out_tile(0, Space::Data, 0, 0)}, [] {});
  // WAR on the reader + WAW on the writer (distinct lanes).
  EXPECT_EQ(rt.num_edges(), 3u);
  EXPECT_EQ(rt.num_tasks(), 4u);
  ASSERT_TRUE(rt.run());
}

}  // namespace
}  // namespace ftla::runtime

// Fused in-kernel ABFT tests.
//
// The fused pipeline has three contracts, each exercised here at its own
// layer:
//  * packing: pack_a_fused / pack_b_fused produce the same packed bytes
//    as pack_a / pack_b (including the zero-padded tails at exact
//    kMR/kNR boundaries) AND checksums BIT-IDENTICAL to the standalone
//    checksum::encode_col / encode_row of the packed block, for all four
//    transpose combinations;
//  * gemm_fused: C is bit-identical to blas::gemm, the write-back
//    `actual` checksums match a fresh encode within tolerance, and the
//    packing-pass b_row_cs is bit-identical to encode_row(op(B)) when a
//    single B macro panel covers the problem;
//  * checksum::gemm_ft: a clean run flags nothing, a single flipped
//    element of C (corruption predating the GEMM) is detected and
//    corrected in place at tile granularity, and a two-error column is
//    flagged but reported uncorrectable;
//  * drivers: ft_lu / ft_cholesky / ft_qr with FtOptions::fused_abft
//    produce correct factors error-free (fork-join and dataflow), and a
//    fault-injection campaign shows the fused verify catching and
//    fixing a TMU-tile flip (suite FusedAbftFaults doubles as the ASan
//    smoke in CI).

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "blas/level3.hpp"
#include "blas/pack.hpp"
#include "blas/simd.hpp"
#include "checksum/encode.hpp"
#include "checksum/fused.hpp"
#include "core/baseline.hpp"
#include "core/campaign.hpp"
#include "core/ft_driver.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"

namespace ftla {
namespace {

using blas::kKC;
using blas::kMR;
using blas::kNR;
using blas::Trans;

/// Dense copy of op(A)(i0:i0+mc, p0:p0+kc).
MatD op_block(Trans ta, const MatD& a, index_t i0, index_t mc, index_t p0, index_t kc) {
  MatD blk(mc, kc);
  for (index_t p = 0; p < kc; ++p)
    for (index_t i = 0; i < mc; ++i)
      blk(i, p) = ta == Trans::NoTrans ? a(i0 + i, p0 + p) : a(p0 + p, i0 + i);
  return blk;
}

// ---------------------------------------------------------------------
// Packing: remainder-path zero padding at exact micro-tile boundaries.
// ---------------------------------------------------------------------

using PackShape = std::tuple<int, int, int>;  // mc (or nc), kc, trans

class PackAPad : public ::testing::TestWithParam<PackShape> {};

TEST_P(PackAPad, TailRowsAreZeroAndDataExact) {
  const auto [mc_i, kc_i, t] = GetParam();
  const index_t mc = mc_i, kc = kc_i;
  const auto ta = t ? Trans::Trans : Trans::NoTrans;
  const index_t i0 = 3, p0 = 2;
  const MatD a = ta == Trans::NoTrans ? random_general(i0 + mc + 1, p0 + kc + 1, 7)
                                      : random_general(p0 + kc + 1, i0 + mc + 1, 7);

  // Poison the buffer so stale values can never pass for padding.
  std::vector<double> buf(static_cast<std::size_t>(blas::packed_a_size(mc, kc)), -777.0);
  blas::pack_a(ta, a.const_view(), i0, mc, p0, kc, buf.data());

  const MatD blk = op_block(ta, a, i0, mc, p0, kc);
  const index_t panels = (mc + kMR - 1) / kMR;
  for (index_t q = 0; q < panels; ++q) {
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < kMR; ++i) {
        const index_t r = q * kMR + i;
        const double got = buf[static_cast<std::size_t>(q * kMR * kc + p * kMR + i)];
        if (r < mc) {
          EXPECT_EQ(got, blk(r, p)) << "q=" << q << " p=" << p << " i=" << i;
        } else {
          EXPECT_EQ(got, 0.0) << "pad q=" << q << " p=" << p << " i=" << i;
        }
      }
    }
  }
}

// mc = kMR and mc = 2·kMR are the exact-boundary cases: the remainder
// loop must be a no-op, not an over- or under-run.
INSTANTIATE_TEST_SUITE_P(Shapes, PackAPad,
                         ::testing::Values(PackShape{8, 5, 0}, PackShape{8, 5, 1},
                                           PackShape{16, 7, 0}, PackShape{16, 7, 1},
                                           PackShape{1, 3, 0}, PackShape{9, 4, 0},
                                           PackShape{9, 4, 1}, PackShape{15, 6, 0},
                                           PackShape{23, 9, 1}));

class PackBPad : public ::testing::TestWithParam<PackShape> {};

TEST_P(PackBPad, TailColsAreZeroAndDataExact) {
  const auto [nc_i, kc_i, t] = GetParam();
  const index_t nc = nc_i, kc = kc_i;
  const auto tb = t ? Trans::Trans : Trans::NoTrans;
  const index_t j0 = 2, p0 = 1;
  const MatD b = tb == Trans::NoTrans ? random_general(p0 + kc + 1, j0 + nc + 1, 8)
                                      : random_general(j0 + nc + 1, p0 + kc + 1, 8);

  std::vector<double> buf(static_cast<std::size_t>(blas::packed_b_size(kc, nc)), -777.0);
  blas::pack_b(tb, b.const_view(), p0, kc, j0, nc, buf.data());

  MatD blk(kc, nc);
  for (index_t j = 0; j < nc; ++j)
    for (index_t p = 0; p < kc; ++p)
      blk(p, j) = tb == Trans::NoTrans ? b(p0 + p, j0 + j) : b(j0 + j, p0 + p);
  const index_t panels = (nc + kNR - 1) / kNR;
  for (index_t q = 0; q < panels; ++q) {
    for (index_t p = 0; p < kc; ++p) {
      for (index_t j = 0; j < kNR; ++j) {
        const index_t col = q * kNR + j;
        const double got = buf[static_cast<std::size_t>(q * kc * kNR + p * kNR + j)];
        if (col < nc) {
          EXPECT_EQ(got, blk(p, col)) << "q=" << q << " p=" << p << " j=" << j;
        } else {
          EXPECT_EQ(got, 0.0) << "pad q=" << q << " p=" << p << " j=" << j;
        }
      }
    }
  }
}

// nc = kNR and nc = 2·kNR are the exact-boundary cases.
INSTANTIATE_TEST_SUITE_P(Shapes, PackBPad,
                         ::testing::Values(PackShape{4, 5, 0}, PackShape{4, 5, 1},
                                           PackShape{8, 7, 0}, PackShape{8, 7, 1},
                                           PackShape{1, 3, 0}, PackShape{5, 4, 0},
                                           PackShape{5, 4, 1}, PackShape{7, 6, 0},
                                           PackShape{11, 9, 1}));

// ---------------------------------------------------------------------
// Fused packers: checksums bit-identical to the standalone encoders,
// packed bytes identical to the plain packers.
// ---------------------------------------------------------------------

class FusedPack : public ::testing::TestWithParam<PackShape> {};

TEST_P(FusedPack, AChecksumBitIdenticalToEncodeCol) {
  const auto [mc_i, kc_i, t] = GetParam();
  const index_t mc = mc_i, kc = kc_i;
  const auto ta = t ? Trans::Trans : Trans::NoTrans;
  const index_t i0 = 5, p0 = 3;
  const MatD a = ta == Trans::NoTrans ? random_general(i0 + mc + 2, p0 + kc + 2, 11)
                                      : random_general(p0 + kc + 2, i0 + mc + 2, 11);

  const std::size_t sz = static_cast<std::size_t>(blas::packed_a_size(mc, kc));
  std::vector<double> plain(sz, -1.0), fused(sz, -2.0), cs(2 * static_cast<std::size_t>(kc));
  blas::pack_a(ta, a.const_view(), i0, mc, p0, kc, plain.data());
  blas::pack_a_fused(ta, a.const_view(), i0, mc, p0, kc, fused.data(), cs.data());
  EXPECT_EQ(0, std::memcmp(plain.data(), fused.data(), sz * sizeof(double)));

  const MatD blk = op_block(ta, a, i0, mc, p0, kc);
  MatD enc(2, kc);
  checksum::encode_col(blk.const_view(), enc.view());
  for (index_t p = 0; p < kc; ++p) {
    EXPECT_EQ(cs[static_cast<std::size_t>(2 * p)], enc(0, p)) << "sum p=" << p;
    EXPECT_EQ(cs[static_cast<std::size_t>(2 * p + 1)], enc(1, p)) << "weighted p=" << p;
  }
}

TEST_P(FusedPack, BChecksumBitIdenticalToEncodeRow) {
  const auto [nc_i, kc_i, t] = GetParam();
  const index_t nc = nc_i, kc = kc_i;
  const auto tb = t ? Trans::Trans : Trans::NoTrans;
  const index_t j0 = 4, p0 = 2;
  const MatD b = tb == Trans::NoTrans ? random_general(p0 + kc + 2, j0 + nc + 2, 12)
                                      : random_general(j0 + nc + 2, p0 + kc + 2, 12);

  const std::size_t sz = static_cast<std::size_t>(blas::packed_b_size(kc, nc));
  std::vector<double> plain(sz, -1.0), fused(sz, -2.0), rcs(2 * static_cast<std::size_t>(kc));
  blas::pack_b(tb, b.const_view(), p0, kc, j0, nc, plain.data());
  blas::pack_b_fused(tb, b.const_view(), p0, kc, j0, nc, fused.data(), rcs.data());
  EXPECT_EQ(0, std::memcmp(plain.data(), fused.data(), sz * sizeof(double)));

  MatD blk(kc, nc);
  for (index_t j = 0; j < nc; ++j)
    for (index_t p = 0; p < kc; ++p)
      blk(p, j) = tb == Trans::NoTrans ? b(p0 + p, j0 + j) : b(j0 + j, p0 + p);
  MatD enc(kc, 2);
  checksum::encode_row(blk.const_view(), enc.view());
  for (index_t p = 0; p < kc; ++p) {
    EXPECT_EQ(rcs[static_cast<std::size_t>(2 * p)], enc(p, 0)) << "sum p=" << p;
    EXPECT_EQ(rcs[static_cast<std::size_t>(2 * p + 1)], enc(p, 1)) << "weighted p=" << p;
  }
}

// Shapes straddle every unroll boundary: multiples of 4/kMR, odd tails,
// single row/column, and a full production-size block.
INSTANTIATE_TEST_SUITE_P(Shapes, FusedPack,
                         ::testing::Values(PackShape{8, 8, 0}, PackShape{8, 8, 1},
                                           PackShape{13, 7, 0}, PackShape{13, 7, 1},
                                           PackShape{1, 5, 0}, PackShape{1, 5, 1},
                                           PackShape{4, 3, 0}, PackShape{31, 5, 1},
                                           PackShape{64, 32, 0}, PackShape{64, 32, 1},
                                           PackShape{100, 100, 0}, PackShape{100, 100, 1}));

// ---------------------------------------------------------------------
// gemm_fused: C bit-identical to gemm, checksum streams consistent.
// ---------------------------------------------------------------------

using GemmShape = std::tuple<int, int, int, int, int>;  // m n k ta tb

class GemmFused : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmFused, CBitIdenticalAndChecksumsConsistent) {
  const auto [m, n, k, tai, tbi] = GetParam();
  const auto ta = tai ? Trans::Trans : Trans::NoTrans;
  const auto tb = tbi ? Trans::Trans : Trans::NoTrans;
  const double alpha = -1.0, beta = 1.0;
  const MatD a = ta == Trans::NoTrans ? random_general(m, k, 31) : random_general(k, m, 31);
  const MatD b = tb == Trans::NoTrans ? random_general(k, n, 32) : random_general(n, k, 32);
  const MatD c0 = random_general(m, n, 33);

  MatD c_in_cs(2, n);
  checksum::encode_col(c0.const_view(), c_in_cs.view());

  MatD c_plain(c0.const_view());
  blas::gemm(ta, tb, alpha, a.const_view(), b.const_view(), beta, c_plain.view());

  for (const auto mode : {blas::GemmFt::EncodeOnly, blas::GemmFt::VerifyTile}) {
    MatD c_fused(c0.const_view());
    MatD actual(2, n, 0.0), reference(2, n, 0.0), brcs(k, 2, 0.0);
    blas::GemmFtOut out;
    out.actual = actual.view();
    if (mode == blas::GemmFt::VerifyTile) out.reference = reference.view();
    out.b_row_cs = brcs.view();
    blas::gemm_fused(ta, tb, alpha, a.const_view(), b.const_view(), beta, c_fused.view(),
                     mode, /*allow_threads=*/true, out);

    // C must be bit-identical to the plain packed GEMM.
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        ASSERT_EQ(c_fused(i, j), c_plain(i, j))
            << "mode=" << static_cast<int>(mode) << " at " << i << "," << j;

    // Write-back checksums ≈ fresh encode of the result.
    MatD enc(2, n);
    checksum::encode_col(c_plain.const_view(), enc.view());
    const double scale = 1e-10 * (1.0 + max_abs(enc.const_view()));
    EXPECT_LT(max_abs_diff(actual.const_view(), enc.const_view()), scale);

    if (mode == blas::GemmFt::VerifyTile) {
      // Error-free closure: beta·c(C_in) + alpha·c(op(A))·op(B) ≈ actual.
      for (index_t j = 0; j < n; ++j) {
        EXPECT_NEAR(beta * c_in_cs(0, j) + reference(0, j), actual(0, j), scale) << j;
        EXPECT_NEAR(beta * c_in_cs(1, j) + reference(1, j), actual(1, j), scale) << j;
      }
    }

    // Packing-pass row checksums of op(B): bit-identical to the
    // standalone encoder while one macro panel spans all n columns.
    if (n <= blas::kNC) {
      MatD opb(k, n);
      for (index_t j = 0; j < n; ++j)
        for (index_t p = 0; p < k; ++p)
          opb(p, j) = tb == Trans::NoTrans ? b(p, j) : b(j, p);
      MatD encb(k, 2);
      checksum::encode_row(opb.const_view(), encb.view());
      for (index_t p = 0; p < k; ++p) {
        EXPECT_EQ(brcs(p, 0), encb(p, 0)) << "row sum p=" << p;
        EXPECT_EQ(brcs(p, 1), encb(p, 1)) << "row weighted p=" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmFused,
    ::testing::Values(
        // Below the packing threshold: scalar fallback path.
        GemmShape{17, 9, 11, 0, 0}, GemmShape{17, 9, 11, 1, 1},
        // Packed single-thread path (≥ 2^15 flops, < 2^18).
        GemmShape{32, 32, 32, 0, 0}, GemmShape{32, 32, 32, 0, 1},
        GemmShape{32, 32, 32, 1, 0}, GemmShape{32, 32, 32, 1, 1},
        GemmShape{45, 37, 53, 0, 0}, GemmShape{45, 37, 53, 1, 1},
        // Threaded packed path (≥ 2^18 flops), multiple ic/jc blocks.
        GemmShape{150, 130, 90, 0, 0}, GemmShape{150, 130, 90, 0, 1},
        GemmShape{150, 130, 90, 1, 0}, GemmShape{150, 130, 90, 1, 1},
        // k spanning several kKC steps is covered by 90 < kKC=256 above;
        // force two pc steps and two jc blocks explicitly.
        GemmShape{64, 520, 300, 0, 0}));

// ---------------------------------------------------------------------
// checksum::gemm_ft — tile verify/correct on top of the fused pipeline.
// ---------------------------------------------------------------------

struct FtFixture {
  MatD a, b, c_clean, cs_in;
  double alpha = -1.0, beta = 1.0;

  explicit FtFixture(index_t m = 32, index_t n = 32, index_t k = 32)
      : a(random_general(m, k, 41)),
        b(random_general(k, n, 42)),
        c_clean(random_general(m, n, 43)),
        cs_in(2, n) {
    checksum::encode_col(c_clean.const_view(), cs_in.view());
  }

  MatD oracle() const {
    MatD c(c_clean.const_view());
    blas::gemm(Trans::NoTrans, Trans::NoTrans, alpha, a.const_view(), b.const_view(), beta,
               c.view());
    return c;
  }

  checksum::GemmFtReport run(MatD& c) const {
    checksum::GemmFtSpec spec;
    spec.c_cs_in = cs_in.const_view();
    spec.tol.context = static_cast<double>(c.rows());
    return checksum::gemm_ft(Trans::NoTrans, Trans::NoTrans, alpha, a.const_view(),
                             b.const_view(), beta, c.view(), spec);
  }
};

TEST(GemmFt, CleanRunFlagsNothing) {
  FtFixture f;
  MatD c(f.c_clean.const_view());
  const auto rep = f.run(c);
  EXPECT_TRUE(rep.verified);
  EXPECT_EQ(rep.columns_flagged, 0);
  EXPECT_EQ(rep.elements_corrected, 0);
  EXPECT_TRUE(rep.ok());
  const MatD want = f.oracle();
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i) ASSERT_EQ(c(i, j), want(i, j));
}

TEST(GemmFt, SingleFlipDetectedAndCorrected) {
  FtFixture f;
  MatD c(f.c_clean.const_view());
  c(7, 13) += 5.0;  // corruption sitting in C before the GEMM starts
  const auto rep = f.run(c);
  EXPECT_EQ(rep.columns_flagged, 1);
  EXPECT_EQ(rep.elements_corrected, 1);
  EXPECT_TRUE(rep.ok());
  const MatD want = f.oracle();
  EXPECT_LT(max_abs_diff(c.const_view(), want.const_view()),
            1e-8 * (1.0 + max_abs(want.const_view())));
}

TEST(GemmFt, TwoFlipsInDifferentColumnsBothCorrected) {
  FtFixture f;
  MatD c(f.c_clean.const_view());
  c(3, 2) -= 4.0;
  c(20, 29) += 9.0;
  const auto rep = f.run(c);
  EXPECT_EQ(rep.columns_flagged, 2);
  EXPECT_EQ(rep.elements_corrected, 2);
  EXPECT_TRUE(rep.ok());
  const MatD want = f.oracle();
  EXPECT_LT(max_abs_diff(c.const_view(), want.const_view()),
            1e-8 * (1.0 + max_abs(want.const_view())));
}

TEST(GemmFt, TwoFlipsInOneColumnIsUncorrectable) {
  FtFixture f;
  MatD c(f.c_clean.const_view());
  c(4, 17) += 3.0;
  c(25, 17) += 7.0;  // second error in the same column: δ₂/δ₁ localization fails
  const auto rep = f.run(c);
  EXPECT_GE(rep.columns_flagged, 1);
  EXPECT_FALSE(rep.ok());
}

TEST(GemmFt, EncodeOnlySkipsVerification) {
  FtFixture f;
  MatD c(f.c_clean.const_view());
  c(7, 13) += 5.0;
  checksum::GemmFtSpec spec;
  spec.mode = blas::GemmFt::EncodeOnly;
  const auto rep = checksum::gemm_ft(Trans::NoTrans, Trans::NoTrans, f.alpha,
                                     f.a.const_view(), f.b.const_view(), f.beta, c.view(),
                                     spec);
  EXPECT_FALSE(rep.verified);
  EXPECT_EQ(rep.columns_flagged, 0);
}

// ---------------------------------------------------------------------
// CPU feature dispatch: one process-wide snapshot, consistent answers.
// ---------------------------------------------------------------------

TEST(CpuFeatures, SnapshotIsStableAndConsistent) {
  const blas::detail::CpuFeatures& f1 = blas::detail::cpu_features();
  const blas::detail::CpuFeatures& f2 = blas::detail::cpu_features();
  EXPECT_EQ(&f1, &f2);  // one function-local static, dispatch decided once
  EXPECT_EQ(blas::detail::cpu_supports_avx2_fma(), f1.avx2_fma());
  if (f1.force_scalar) EXPECT_FALSE(f1.avx2_fma());
}

// ---------------------------------------------------------------------
// Drivers, error-free: fused_abft produces correct factors and counts
// one fused verify per trailing-update tile.
// ---------------------------------------------------------------------

namespace cdriver = ftla::core;

cdriver::FtOptions fused_options(int ngpu, cdriver::SchedulerKind sched) {
  cdriver::FtOptions opts;
  opts.nb = 16;
  opts.ngpu = ngpu;
  opts.checksum = cdriver::ChecksumKind::Full;
  opts.scheme = cdriver::SchemeKind::NewScheme;
  opts.scheduler = sched;
  opts.fused_abft = true;
  return opts;
}

using FleetParam = std::tuple<int, int>;  // ngpu, scheduler

class FusedDrivers : public ::testing::TestWithParam<FleetParam> {};

TEST_P(FusedDrivers, LuErrorFree) {
  const auto [ngpu, sched] = GetParam();
  const index_t n = 96;
  const MatD a = random_diag_dominant(n, 22);
  const auto opts = fused_options(ngpu, static_cast<cdriver::SchedulerKind>(sched));
  const cdriver::FtOutput out = cdriver::ft_lu(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_GT(out.stats.verifications_tmu_fused, 0u);
  const MatD ref = cdriver::host_lu_nopiv(a.const_view(), opts.nb);
  EXPECT_LT(max_abs_diff(out.factors.const_view(), ref.const_view()), 1e-9);
  EXPECT_LT(lu_residual(a.const_view(), out.factors.const_view()), 1e-12);
}

TEST_P(FusedDrivers, CholeskyErrorFree) {
  const auto [ngpu, sched] = GetParam();
  const index_t n = 96;
  const MatD a = random_spd(n, 21);
  const auto opts = fused_options(ngpu, static_cast<cdriver::SchedulerKind>(sched));
  const cdriver::FtOutput out = cdriver::ft_cholesky(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_GT(out.stats.verifications_tmu_fused, 0u);
  EXPECT_LT(cholesky_residual(a.const_view(), out.factors.const_view()), 1e-12);
}

TEST_P(FusedDrivers, QrErrorFree) {
  const auto [ngpu, sched] = GetParam();
  const index_t n = 96;
  const MatD a = random_general(n, n, 23);
  const auto opts = fused_options(ngpu, static_cast<cdriver::SchedulerKind>(sched));
  const cdriver::FtOutput out = cdriver::ft_qr(a.const_view(), opts);
  ASSERT_TRUE(out.ok()) << out.stats.summary();
  EXPECT_EQ(out.stats.errors_detected, 0u) << out.stats.summary();
  EXPECT_GT(out.stats.verifications_tmu_fused, 0u);
  std::vector<double> tau_ref;
  const MatD ref = cdriver::host_qr(a.const_view(), opts.nb, tau_ref);
  EXPECT_LT(max_abs_diff(out.factors.const_view(), ref.const_view()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Fleets, FusedDrivers,
    ::testing::Values(FleetParam{1, 0}, FleetParam{2, 0}, FleetParam{2, 1}),
    [](const ::testing::TestParamInfo<FleetParam>& tpi) {
      return std::string(std::get<1>(tpi.param) ? "dataflow" : "forkjoin") + "_" +
             std::to_string(std::get<0>(tpi.param)) + "gpu";
    });

// Fork-join results with fused_abft OFF must remain bit-identical to the
// options-default run — the flag defaults off and must not perturb the
// legacy path.
TEST(FusedOff, ForkJoinBitIdenticalToLegacy) {
  const index_t n = 96;
  const MatD a = random_diag_dominant(n, 22);
  cdriver::FtOptions opts;
  opts.nb = 16;
  opts.ngpu = 2;
  const cdriver::FtOutput base = cdriver::ft_lu(a.const_view(), opts);
  opts.fused_abft = false;  // explicit off == default
  const cdriver::FtOutput off = cdriver::ft_lu(a.const_view(), opts);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.stats.verifications_tmu_fused, 0u);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(base.factors(i, j), off.factors(i, j)) << i << "," << j;
}

// ---------------------------------------------------------------------
// Fault injection: a flipped TMU-tile element is caught and fixed by the
// fused in-kernel verify, at tile granularity, with no restart. The
// FusedAbftFaults suite is the CI ASan fused smoke (-R filter).
// ---------------------------------------------------------------------

cdriver::CampaignConfig fused_campaign(cdriver::Decomp decomp) {
  cdriver::CampaignConfig cfg;
  cfg.decomp = decomp;
  cfg.n = 96;
  cfg.opts.nb = 16;
  cfg.opts.ngpu = 2;
  cfg.opts.checksum = cdriver::ChecksumKind::Full;
  cfg.opts.scheme = cdriver::SchemeKind::NewScheme;
  cfg.opts.fused_abft = true;
  return cfg;
}

fault::FaultSpec tmu_update_flip(index_t iter, index_t br, index_t bc) {
  fault::FaultSpec s;
  s.type = fault::FaultType::MemoryDram;
  s.site = fault::OpSite{iter, fault::OpKind::TMU};
  s.part = fault::Part::Update;
  s.timing = fault::Timing::BetweenOps;
  s.target_br = br;
  s.target_bc = bc;
  s.seed = 12345;
  return s;
}

TEST(FusedAbftFaults, LuTmuTileFlipCorrectedInKernel) {
  cdriver::Campaign campaign(fused_campaign(cdriver::Decomp::Lu));
  const auto result = campaign.run(tmu_update_flip(1, 3, 2));
  EXPECT_EQ(result.outcome, cdriver::Outcome::CorrectedAbft) << result.summary();
  EXPECT_GT(result.stats.verifications_tmu_fused, 0u);
  EXPECT_GE(result.stats.corrected_0d, 1u);
  EXPECT_EQ(result.stats.local_restarts, 0u);
}

TEST(FusedAbftFaults, CholeskyTmuTileFlipCorrectedInKernel) {
  cdriver::Campaign campaign(fused_campaign(cdriver::Decomp::Cholesky));
  const auto result = campaign.run(tmu_update_flip(1, 3, 2));
  EXPECT_EQ(result.outcome, cdriver::Outcome::CorrectedAbft) << result.summary();
  EXPECT_GT(result.stats.verifications_tmu_fused, 0u);
  EXPECT_GE(result.stats.corrected_0d, 1u);
  EXPECT_EQ(result.stats.local_restarts, 0u);
}

TEST(FusedAbftFaults, QrTmuPanelFlipCorrected) {
  // QR injects TMU faults at panel granularity ({k, j} spans every block
  // row of the trailing column): the flip may land in the top reflector
  // tile (outside the fused window, caught by the windowed checks) or in
  // a lower tile (corrected in-kernel), so accept either correction path.
  cdriver::Campaign campaign(fused_campaign(cdriver::Decomp::Qr));
  const auto result = campaign.run(tmu_update_flip(1, 1, 2));
  EXPECT_TRUE(result.outcome == cdriver::Outcome::CorrectedAbft ||
              result.outcome == cdriver::Outcome::CorrectedRestart)
      << result.summary();
  EXPECT_GT(result.stats.verifications_tmu_fused, 0u);
}

}  // namespace
}  // namespace ftla

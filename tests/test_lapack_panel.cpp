// Panel-factorization property tests: the vectorized/blocked potrf2,
// getrf2 and geqrf2 kernels against their retained scalar _seq oracles.
//
// The sweeps deliberately use shapes that are not multiples of the
// internal blocking factors (kPanelIB / kQrPanelIB = 16, kPotrf2Cutoff =
// 32) so every recursion split, sub-block remainder and scalar tail is
// exercised, plus strided sub-views of a larger parent (ld > rows) and
// pivot-heavy inputs that force a row swap on every column.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "blas/blas.hpp"
#include "lapack/lapack.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"

namespace ftla::lapack {
namespace {

// Scale-aware tolerance: the blocked kernels reassociate sums (packed
// GEMM accumulates in a different order than the scalar sweeps), so
// factors match the oracle to rounding, not bit-for-bit.
double tol_for(index_t m, index_t n) {
  return 1e-11 * static_cast<double>(m + n);
}

// --- potrf2 vs oracle -------------------------------------------------

TEST(Potrf2Oracle, MatchesSeqAcrossSizes) {
  for (index_t n : {1, 2, 7, 16, 31, 33, 48, 100, 129}) {
    MatD a = random_spd(n, static_cast<std::uint64_t>(n));
    MatD a_ref = a;
    EXPECT_EQ(potrf2(a.view()), 0) << "n=" << n;
    EXPECT_EQ(potrf2_seq(a_ref.view()), 0) << "n=" << n;
    EXPECT_LE(max_abs_diff(a.const_view(), a_ref.const_view()), tol_for(n, n)) << "n=" << n;
  }
}

TEST(Potrf2Oracle, SubViewHonorsLeadingDimension) {
  const index_t n = 45;
  MatD parent = random_spd(n + 8, 11);
  MatD dense(n, n);
  copy_view(parent.const_view().block(3, 3, n, n), dense.view());
  // The 45×45 interior block of an SPD matrix is SPD (principal minor).
  MatD dense_ref = dense;
  EXPECT_EQ(potrf2(parent.block(3, 3, n, n)), 0);
  EXPECT_EQ(potrf2_seq(dense_ref.view()), 0);
  EXPECT_LE(max_abs_diff(parent.const_view().block(3, 3, n, n), dense_ref.const_view()),
            tol_for(n, n));
}

TEST(Potrf2Oracle, IndefiniteInfoMatchesSeq) {
  for (index_t bad : {index_t{0}, index_t{5}, index_t{40}}) {
    MatD a = random_spd(48, 99);
    a(bad, bad) = -1e3;  // dominant negative diagonal breaks PD at `bad`
    MatD a_ref = a;
    const index_t info = potrf2(a.view());
    const index_t info_ref = potrf2_seq(a_ref.view());
    EXPECT_NE(info, 0) << "bad=" << bad;
    EXPECT_EQ(info, info_ref) << "bad=" << bad;
  }
}

// --- getrf2 vs oracle -------------------------------------------------

TEST(Getrf2Oracle, MatchesSeqAcrossShapes) {
  const std::vector<std::pair<index_t, index_t>> shapes{
      {1, 1}, {5, 3}, {16, 16}, {17, 17}, {37, 23}, {100, 100}, {129, 96}, {200, 48},
      // wide panels (n > m) cover the trailing-column sweep past the square part
      {3, 9}, {16, 40}, {33, 70}};
  for (auto [m, n] : shapes) {
    MatD a = random_general(m, n, static_cast<std::uint64_t>(13 * m + n));
    MatD a_ref = a;
    std::vector<index_t> piv, piv_ref;
    EXPECT_EQ(getrf2(a.view(), piv), 0) << m << "x" << n;
    EXPECT_EQ(getrf2_seq(a_ref.view(), piv_ref), 0) << m << "x" << n;
    EXPECT_EQ(piv, piv_ref) << m << "x" << n;
    EXPECT_LE(max_abs_diff(a.const_view(), a_ref.const_view()), tol_for(m, n)) << m << "x" << n;
  }
}

TEST(Getrf2Oracle, SubViewMatchesDenseCopy) {
  const index_t m = 61, n = 29;
  MatD parent = random_general(m + 10, n + 6, 77);
  MatD dense(m, n);
  copy_view(parent.const_view().block(4, 2, m, n), dense.view());
  std::vector<index_t> piv, piv_ref;
  EXPECT_EQ(getrf2(parent.block(4, 2, m, n), piv), 0);
  EXPECT_EQ(getrf2_seq(dense.view(), piv_ref), 0);
  EXPECT_EQ(piv, piv_ref);
  EXPECT_LE(max_abs_diff(parent.const_view().block(4, 2, m, n), dense.const_view()),
            tol_for(m, n));
}

TEST(Getrf2Oracle, PivotHeavyEveryColumnSwaps) {
  // Row magnitudes increase downward, so the pivot search selects the
  // last row at every step: maximal swap traffic through the vectorized
  // row exchange.
  const index_t m = 50, n = 50;
  MatD a = random_general(m, n, 5);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) a(i, j) += static_cast<double>(i * i) * 10.0;
  MatD a_ref = a;
  std::vector<index_t> piv, piv_ref;
  EXPECT_EQ(getrf2(a.view(), piv), 0);
  EXPECT_EQ(getrf2_seq(a_ref.view(), piv_ref), 0);
  EXPECT_EQ(piv, piv_ref);
  index_t swaps = 0;
  for (index_t j = 0; j < n; ++j)
    if (piv[static_cast<std::size_t>(j)] != j) ++swaps;
  EXPECT_GT(swaps, n / 2);
  EXPECT_LE(max_abs_diff(a.const_view(), a_ref.const_view()), tol_for(m, n));
}

TEST(Getrf2Oracle, SingularInfoOffsetMatchesSeq) {
  // A zero column at position k yields a zero pivot exactly at step k:
  // info must be the 1-based global index even when the failure lands in
  // the right half of a recursion split.
  for (index_t k : {index_t{0}, index_t{7}, index_t{16}, index_t{29}, index_t{45}}) {
    const index_t m = 64, n = 48;
    MatD a = random_general(m, n, static_cast<std::uint64_t>(k + 2));
    for (index_t i = 0; i < m; ++i) a(i, k) = 0.0;
    MatD a_ref = a;
    std::vector<index_t> piv, piv_ref;
    const index_t info = getrf2(a.view(), piv);
    const index_t info_ref = getrf2_seq(a_ref.view(), piv_ref);
    EXPECT_EQ(info, k + 1) << "k=" << k;
    EXPECT_EQ(info, info_ref) << "k=" << k;
  }
}

TEST(Getrf2Oracle, ReconstructsPA) {
  // End-to-end property: P·A = L·U within a residual bound, independent
  // of the oracle comparison above.
  const index_t m = 96, n = 96;
  const MatD a0 = random_general(m, n, 21);
  MatD a = a0;
  std::vector<index_t> piv;
  ASSERT_EQ(getrf2(a.view(), piv), 0);

  MatD pa = a0;
  laswp(pa.view(), piv, 0, n);
  MatD lu(m, n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      const index_t kmax = std::min(std::min(i, j) + 1, n);
      for (index_t k = 0; k < kmax; ++k) {
        const double l = i == k ? 1.0 : a(i, k);
        s += l * a(k, j);
      }
      lu(i, j) = s;
    }
  }
  EXPECT_LE(max_rel_diff(pa.const_view(), lu.const_view()), 1e-10);
}

TEST(Getrf2NopivOracle, MatchesSeqOnDominant) {
  for (index_t n : {3, 16, 31, 64, 90}) {
    MatD a = random_general(n, n, static_cast<std::uint64_t>(n) + 50);
    for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(2 * n);
    MatD a_ref = a;
    EXPECT_EQ(getrf2_nopiv(a.view()), 0) << "n=" << n;
    EXPECT_EQ(getrf2_nopiv_seq(a_ref.view()), 0) << "n=" << n;
    EXPECT_LE(max_abs_diff(a.const_view(), a_ref.const_view()), tol_for(n, n)) << "n=" << n;
  }
}

// --- geqrf2 vs oracle -------------------------------------------------

TEST(Geqrf2Oracle, MatchesSeqAcrossShapes) {
  const std::vector<std::pair<index_t, index_t>> shapes{
      {1, 1}, {8, 5}, {16, 16}, {23, 17}, {50, 50}, {75, 33}, {130, 64}, {20, 44}};
  for (auto [m, n] : shapes) {
    MatD a = random_general(m, n, static_cast<std::uint64_t>(m + 31 * n));
    MatD a_ref = a;
    std::vector<double> tau, tau_ref;
    EXPECT_EQ(geqrf2(a.view(), tau), 0) << m << "x" << n;
    geqrf2_seq(a_ref.view(), tau_ref);
    ASSERT_EQ(tau.size(), tau_ref.size());
    for (std::size_t i = 0; i < tau.size(); ++i)
      EXPECT_NEAR(tau[i], tau_ref[i], tol_for(m, n)) << m << "x" << n << " tau " << i;
    EXPECT_LE(max_rel_diff(a.const_view(), a_ref.const_view()), tol_for(m, n)) << m << "x" << n;
  }
}

TEST(Geqrf2Oracle, SubViewMatchesDenseCopy) {
  const index_t m = 57, n = 21;
  MatD parent = random_general(m + 5, n + 9, 123);
  MatD dense(m, n);
  copy_view(parent.const_view().block(2, 6, m, n), dense.view());
  std::vector<double> tau, tau_ref;
  EXPECT_EQ(geqrf2(parent.block(2, 6, m, n), tau), 0);
  geqrf2_seq(dense.view(), tau_ref);
  for (std::size_t i = 0; i < tau.size(); ++i) EXPECT_NEAR(tau[i], tau_ref[i], tol_for(m, n));
  EXPECT_LE(max_rel_diff(parent.const_view().block(2, 6, m, n), dense.const_view()),
            tol_for(m, n));
}

// --- larfg guards -----------------------------------------------------

TEST(LarfgGuard, NonFiniteAlphaSetsInfo) {
  std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> x0 = x;
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    double alpha = bad;
    index_t info = -1;
    const double t = larfg(4, alpha, x.data(), 1, &info);
    EXPECT_EQ(info, 1);
    EXPECT_EQ(t, 0.0);
    EXPECT_EQ(x, x0);  // operands untouched on failure
  }
}

TEST(LarfgGuard, NonFiniteTailSetsInfo) {
  std::vector<double> x{1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  double alpha = 2.0;
  index_t info = -1;
  const double t = larfg(4, alpha, x.data(), 1, &info);
  EXPECT_EQ(info, 1);
  EXPECT_EQ(t, 0.0);
  EXPECT_EQ(alpha, 2.0);
}

TEST(LarfgGuard, FiniteInputReportsZeroInfo) {
  std::vector<double> x{3.0};
  double alpha = 4.0;
  index_t info = -1;
  const double t = larfg(2, alpha, x.data(), 1, &info);
  EXPECT_EQ(info, 0);
  EXPECT_GT(t, 0.0);
  EXPECT_NEAR(std::abs(alpha), 5.0, 1e-14);  // |beta| = hypot(4, 3)
}

TEST(Geqrf2Guard, NonFiniteColumnPropagatesInfo) {
  const index_t m = 40, n = 24;
  for (index_t k : {index_t{0}, index_t{10}, index_t{20}}) {
    MatD a = random_general(m, n, static_cast<std::uint64_t>(90 + k));
    a(m - 1, k) = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> tau;
    EXPECT_EQ(geqrf2(a.view(), tau), k + 1) << "k=" << k;
  }
}

// --- vectorized trsm substitution vs scalar oracle --------------------

TEST(TrsmOracle, LeftSolvesMatchSeq) {
  const std::vector<std::pair<index_t, index_t>> shapes{{4, 4}, {13, 7}, {37, 21}, {96, 37}};
  for (auto [k, nrhs] : shapes) {
    for (blas::Uplo uplo : {blas::Uplo::Lower, blas::Uplo::Upper}) {
      for (blas::Diag diag : {blas::Diag::Unit, blas::Diag::NonUnit}) {
        MatD a = random_general(k, k, static_cast<std::uint64_t>(3 * k + nrhs));
        for (index_t i = 0; i < k; ++i) a(i, i) += static_cast<double>(k) + 2.0;
        MatD b = random_general(k, nrhs, static_cast<std::uint64_t>(k + 7));
        MatD b_ref = b;
        blas::trsm(blas::Side::Left, uplo, blas::Trans::NoTrans, diag, 1.0, a.const_view(),
                   b.view());
        blas::trsm_seq(blas::Side::Left, uplo, blas::Trans::NoTrans, diag, 1.0, a.const_view(),
                       b_ref.view());
        EXPECT_LE(max_rel_diff(b.const_view(), b_ref.const_view()), tol_for(k, nrhs))
            << "k=" << k << " nrhs=" << nrhs << " uplo=" << (uplo == blas::Uplo::Lower)
            << " unit=" << (diag == blas::Diag::Unit);
      }
    }
  }
}

}  // namespace
}  // namespace ftla::lapack

// Concurrency stress for the packed level-3 hot path. The decomposition
// drivers call gemm/trsm/syrk from stream threads and the main thread
// concurrently, so the packed kernels' thread-local packing buffers and
// the pool's tile dispatcher must tolerate overlapping callers. Runs
// under the TSan stress label.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "blas/level3.hpp"
#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix.hpp"

namespace ftla::blas {
namespace {

TEST(BlasStress, ConcurrentPackedGemmCallersMatchOracle) {
  // Four caller threads, each repeatedly running a threaded packed gemm
  // on its own operands. Every caller races the others for pool workers;
  // results must still match the scalar oracle exactly as in isolation.
  constexpr int kCallers = 4;
  constexpr int kRounds = 3;
  const index_t n = 160;  // above the threaded threshold

  std::vector<MatD> expected;
  for (int t = 0; t < kCallers; ++t) {
    const MatD a = random_general(n, n, 100 + t);
    const MatD b = random_general(n, n, 200 + t);
    MatD c(n, n, 0.0);
    gemm_seq(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0,
             c.view());
    expected.push_back(std::move(c));
  }

  std::vector<int> mismatches(kCallers, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, n, &expected, &mismatches] {
      const MatD a = random_general(n, n, 100 + t);
      const MatD b = random_general(n, n, 200 + t);
      for (int round = 0; round < kRounds; ++round) {
        MatD c(n, n, 0.0);
        gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.const_view(), b.const_view(), 0.0,
             c.view());
        if (max_abs_diff(c.view(), expected[static_cast<std::size_t>(t)].view()) >
            1e-12 * static_cast<double>(n))
          ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0);
}

TEST(BlasStress, ConcurrentMixedKernelsMatchOracles) {
  // One caller drives the blocked trsm, one the tiled syrk, one a packed
  // gemm — all through the shared global pool at once.
  const index_t n = 150;
  MatD tri = random_general(n, n, 301);
  for (index_t i = 0; i < n; ++i) tri(i, i) += static_cast<double>(n);
  const MatD rhs0 = random_general(n, n, 302);
  const MatD asyrk = random_general(n, 96, 303);
  const MatD ga = random_general(n, n, 304);
  const MatD gb = random_general(n, n, 305);

  MatD trsm_oracle = rhs0;
  trsm_seq(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, tri.const_view(),
           trsm_oracle.view());
  MatD syrk_oracle(n, n, 0.0);
  syrk_seq(Uplo::Lower, Trans::NoTrans, 1.0, asyrk.const_view(), 0.0, syrk_oracle.view());
  MatD gemm_oracle(n, n, 0.0);
  gemm_seq(Trans::NoTrans, Trans::NoTrans, 1.0, ga.const_view(), gb.const_view(), 0.0,
           gemm_oracle.view());

  MatD trsm_out = rhs0;
  MatD syrk_out(n, n, 0.0);
  MatD gemm_out(n, n, 0.0);
  std::thread t1([&] {
    trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, tri.const_view(),
         trsm_out.view());
  });
  std::thread t2([&] {
    syrk(Uplo::Lower, Trans::NoTrans, 1.0, asyrk.const_view(), 0.0, syrk_out.view());
  });
  std::thread t3([&] {
    gemm(Trans::NoTrans, Trans::NoTrans, 1.0, ga.const_view(), gb.const_view(), 0.0,
         gemm_out.view());
  });
  t1.join();
  t2.join();
  t3.join();

  EXPECT_LT(max_abs_diff(trsm_out.view(), trsm_oracle.view()), 1e-10);
  EXPECT_LT(max_abs_diff(syrk_out.view(), syrk_oracle.view()), 1e-11);
  EXPECT_LT(max_abs_diff(gemm_out.view(), gemm_oracle.view()), 1e-11);
}

}  // namespace
}  // namespace ftla::blas

// TSan-targeted stress over the sync-capturing TraceRecorder: every
// device worker thread and the host hammer one recorder concurrently —
// schedule events, sync edges, link/arrival pairing, fresh id
// allocation — while the host keeps taking snapshots mid-run. CI runs
// this under -fsanitize=thread (ctest label "stress"); the functional
// assertions (no lost events, unique seq numbers, intact pairings) catch
// what the sanitizer alone would miss.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "analysis/hb.hpp"
#include "analysis/hb_lint.hpp"
#include "analysis/lint.hpp"
#include "fault/fault.hpp"
#include "sim/ownership.hpp"
#include "sim/sync.hpp"
#include "trace/recorder.hpp"

namespace ftla::trace {
namespace {

using fault::OpKind;
using fault::Part;
using sim::SyncEdgeKind;

namespace ownership = sim::ownership;

TEST(TraceRecorderStress, ConcurrentEmitsFromAllWorkerContexts) {
  constexpr int kWorkers = 4;
  constexpr int kRounds = 400;
  // Per worker and round: read + write + link + arrive + signal + wait,
  // plus the host thread's own writes outside the workers.
  constexpr std::size_t kPerWorker = 6u * kRounds;

  TraceRecorder rec;
  rec.enable_sync_capture(true);
  rec.begin_run({"lu", "new-scheme", "full", kWorkers, 128, 32, 4});
  rec.begin_iteration(0);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int g = 0; g < kWorkers; ++g) {
    workers.emplace_back([&, g] {
      // Stand in for a stream worker: bind the thread to GPU g so every
      // emit is stamped with that execution context.
      ownership::bind_thread_to_device(static_cast<device_id_t>(g + 1));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kRounds; ++i) {
        const BlockRange blk = BlockRange::single(i % 4, g);
        rec.compute_read(OpKind::TMU, Part::Reference, g, blk);
        rec.compute_write(OpKind::TMU, g, blk);
        // Unique (from, to) endpoints per worker keep the FIFO pairing
        // deterministic even under full interleaving.
        rec.link_transfer(static_cast<device_id_t>(g + 1), 0, 64);
        rec.transfer_arrive(TransferCtx::Fetch, g, kHost, blk);
        const std::uint64_t id = rec.fresh_sync_id();
        rec.sync_signal(SyncEdgeKind::EventRecord, id);
        rec.sync_wait(SyncEdgeKind::EventWait, id);
      }
    });
  }

  go.store(true, std::memory_order_release);
  // Host hammers snapshots and its own emits while the workers run.
  std::size_t host_writes = 0;
  for (int i = 0; i < 50; ++i) {
    rec.compute_write(OpKind::PD, kHost, BlockRange::single(0, 0));
    ++host_writes;
    const Trace mid = rec.snapshot();
    EXPECT_LE(mid.events.size(), rec.num_events());
    std::this_thread::yield();
  }
  for (std::thread& w : workers) w.join();

  rec.end_iteration(0);
  rec.end_run();
  const Trace t = rec.snapshot();

  // begin_run + begin/end iteration + end_run = 4 structural events.
  EXPECT_EQ(t.events.size(),
            kWorkers * kPerWorker + host_writes + 4);
  std::set<std::uint64_t> seqs;
  std::size_t links = 0, arrivals = 0, unpaired = 0;
  for (const TraceEvent& e : t.events) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    if (e.kind == EventKind::LinkTransfer) ++links;
    if (e.kind == EventKind::TransferArrive) {
      ++arrivals;
      if (e.sync_id == 0) ++unpaired;
    }
  }
  EXPECT_EQ(links, arrivals);
  EXPECT_EQ(unpaired, 0u);
}

TEST(TraceRecorderStress, ClearRacingEmittersStaysConsistent) {
  TraceRecorder rec;
  rec.enable_sync_capture(true);
  std::atomic<bool> stop{false};
  std::thread emitter([&] {
    ownership::bind_thread_to_device(1);
    while (!stop.load(std::memory_order_acquire)) {
      rec.compute_write(OpKind::TMU, 0, BlockRange::single(0, 0));
      rec.link_transfer(1, 0, 64);
      rec.transfer_arrive(TransferCtx::Fetch, 0, kHost,
                          BlockRange::single(0, 0));
    }
  });
  for (int i = 0; i < 200; ++i) {
    rec.begin_run({"lu", "new-scheme", "full", 1, 64, 32, 2});
    rec.clear();
  }
  stop.store(true, std::memory_order_release);
  emitter.join();
  rec.clear();
  EXPECT_EQ(rec.num_events(), 0u);
  EXPECT_TRUE(rec.sync_capture_enabled());
}

/// End-to-end under TSan: a real driver run at four devices with sync
/// capture on, i.e. the recorder fed by genuine stream worker threads
/// through the SyncObserver hooks, then the full HB analysis.
TEST(TraceRecorderStress, SyncCapturedDriverRunIsRaceFree) {
  for (const char* algo : {"cholesky", "lu", "qr"}) {
    ftla::analysis::LintCase c;
    c.algorithm = algo;
    c.scheme = core::SchemeKind::NewScheme;
    c.ngpu = 4;
    c.n = 128;
    c.nb = 32;
    const ftla::analysis::HbLintOutcome o = ftla::analysis::hb_lint_case(c);
    EXPECT_TRUE(o.pass) << algo;
    EXPECT_TRUE(o.report.race_free()) << algo;
  }
}

}  // namespace
}  // namespace ftla::trace

// Tests for the heterogeneous-system simulator: device arenas, streams,
// PCIe transfers with fault hooks and cost model, block-cyclic layout.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "sim/distribution.hpp"
#include "sim/load_balancer.hpp"
#include "sim/ownership_map.hpp"
#include "sim/system.hpp"

namespace ftla::sim {
namespace {

TEST(Device, ArenaAllocationsPersistAndCount) {
  Device d(1, DeviceKind::Gpu, "gpu0");
  MatD& a = d.alloc(4, 4, 1.0);
  MatD& b = d.alloc(8, 2);
  EXPECT_EQ(d.num_allocations(), 2u);
  EXPECT_EQ(d.bytes_allocated(), (16u + 16u) * sizeof(double));
  a(0, 0) = 7.0;
  EXPECT_EQ(a(0, 0), 7.0);
  EXPECT_EQ(b(0, 0), 0.0);
  d.free_all();
  EXPECT_EQ(d.num_allocations(), 0u);
  EXPECT_EQ(d.bytes_allocated(), 0u);
}

TEST(Stream, TasksRunInOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) s.enqueue([&order, i] { order.push_back(i); });
  s.synchronize();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeRethrowsTaskException) {
  Stream s;
  s.enqueue([] { throw FtlaError("stream task failed"); });
  EXPECT_THROW(s.synchronize(), FtlaError);
  // Stream stays usable afterwards.
  std::atomic<bool> ran{false};
  s.run([&] { ran = true; });
  EXPECT_TRUE(ran.load());
}

TEST(Stream, RunsOnDedicatedThread) {
  Stream s;
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  s.run([&] { worker = std::this_thread::get_id(); });
  EXPECT_NE(worker, caller);
}

TEST(Pcie, TransferCopiesBytes) {
  PcieLink link;
  MatD src = random_general(6, 4, 1);
  MatD dst(6, 4, 0.0);
  link.transfer(src.const_view(), dst.view(), 0, 1);
  EXPECT_TRUE(approx_equal(src.const_view(), dst.const_view(), 0.0));
}

TEST(Pcie, StatsAccumulate) {
  PcieLink link(1e-6, 1e9);
  MatD src(10, 10, 1.0);
  MatD dst(10, 10);
  link.transfer(src.const_view(), dst.view(), 0, 1);
  link.transfer(src.const_view(), dst.view(), 1, 2);
  EXPECT_EQ(link.stats().transfers, 2u);
  EXPECT_EQ(link.stats().bytes, 2u * 100u * sizeof(double));
  const double expect = 2.0 * (1e-6 + 800.0 / 1e9);
  EXPECT_NEAR(link.stats().modeled_seconds, expect, 1e-12);
  link.reset_stats();
  EXPECT_EQ(link.stats().transfers, 0u);
}

TEST(Pcie, FaultHookSeesReceiverOnly) {
  PcieLink link;
  MatD src(3, 3, 1.0);
  MatD dst(3, 3, 0.0);
  link.set_fault_hook([](ViewD received, const TransferInfo& info) {
    EXPECT_EQ(info.from, 0);
    EXPECT_EQ(info.to, 2);
    received(1, 1) = -99.0;  // corrupt in flight
  });
  link.transfer(src.const_view(), dst.view(), 0, 2);
  EXPECT_EQ(dst(1, 1), -99.0);
  EXPECT_EQ(src(1, 1), 1.0);  // sender unharmed
  link.clear_fault_hook();
  link.transfer(src.const_view(), dst.view(), 0, 2);
  EXPECT_EQ(dst(1, 1), 1.0);
}

TEST(Pcie, ShapeMismatchThrows) {
  PcieLink link;
  MatD src(2, 2);
  MatD dst(3, 3);
  EXPECT_THROW(link.transfer(src.const_view(), dst.view(), 0, 1), FtlaError);
}

TEST(System, TopologyAndIds) {
  HeterogeneousSystem sys(4);
  EXPECT_EQ(sys.ngpu(), 4);
  EXPECT_EQ(sys.cpu().id(), 0);
  EXPECT_EQ(sys.gpu(0).id(), 1);
  EXPECT_EQ(sys.gpu(3).id(), 4);
  EXPECT_EQ(sys.gpu(2).kind(), DeviceKind::Gpu);
}

TEST(System, H2DandD2HandD2D) {
  HeterogeneousSystem sys(2);
  MatD& host = sys.cpu().alloc(4, 4);
  MatD& dev0 = sys.gpu(0).alloc(4, 4);
  MatD& dev1 = sys.gpu(1).alloc(4, 4);
  MatD data = random_general(4, 4, 5);
  copy_view(data.const_view(), host.view());

  sys.h2d(host.const_view(), dev0.view(), 0);
  sys.d2d(dev0.const_view(), 0, dev1.view(), 1);
  MatD& back = sys.cpu().alloc(4, 4);
  sys.d2h(dev1.const_view(), back.view(), 1);
  EXPECT_TRUE(approx_equal(data.const_view(), back.const_view(), 0.0));
  EXPECT_EQ(sys.link().stats().transfers, 3u);
}

TEST(System, ParallelOverGpusRunsAll) {
  HeterogeneousSystem sys(8);
  std::vector<std::atomic<int>> hits(8);
  sys.parallel_over_gpus([&](int g) { hits[static_cast<std::size_t>(g)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(System, ParallelOverGpusPropagatesException) {
  HeterogeneousSystem sys(3);
  EXPECT_THROW(sys.parallel_over_gpus([&](int g) {
    if (g == 1) throw FtlaError("gpu1 failed");
  }),
               FtlaError);
  // System remains usable.
  std::atomic<int> count{0};
  sys.parallel_over_gpus([&](int) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(System, GpuBytesAllocated) {
  HeterogeneousSystem sys(2);
  sys.gpu(0).alloc(10, 10);
  sys.gpu(1).alloc(5, 5);
  EXPECT_EQ(sys.gpu_bytes_allocated(), (100u + 25u) * sizeof(double));
}

TEST(BlockCyclic, OwnerAndLocalIndexRoundTrip) {
  BlockCyclic1D dist(13, 4);
  for (index_t bc = 0; bc < 13; ++bc) {
    const int g = dist.owner(bc);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 4);
    EXPECT_EQ(dist.global_index(g, dist.local_index(bc)), bc);
  }
}

TEST(BlockCyclic, LocalCountsSumToTotal) {
  for (int ngpu : {1, 2, 3, 8}) {
    BlockCyclic1D dist(17, ngpu);
    index_t total = 0;
    for (int g = 0; g < ngpu; ++g) total += dist.local_count(g);
    EXPECT_EQ(total, 17);
  }
}

TEST(BlockCyclic, SingleGpuOwnsEverything) {
  BlockCyclic1D dist(9, 1);
  for (index_t bc = 0; bc < 9; ++bc) {
    EXPECT_EQ(dist.owner(bc), 0);
    EXPECT_EQ(dist.local_index(bc), bc);
  }
}

TEST(BlockCyclic, OwnedFromFiltersAndSorts) {
  BlockCyclic1D dist(10, 3);
  const auto owned = dist.owned_from(1, 4);  // gpu1 owns 1, 4, 7 → from 4: {4, 7}
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0], 4);
  EXPECT_EQ(owned[1], 7);
}

TEST(BlockCyclic, EmptyMatrixOwnsNothing) {
  BlockCyclic1D dist(0, 3);
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(dist.local_count(g), 0);
    EXPECT_TRUE(dist.owned_from(g, 0).empty());
  }
}

TEST(BlockCyclic, MoreGpusThanColumnsLeavesTailIdle) {
  BlockCyclic1D dist(2, 5);
  EXPECT_EQ(dist.local_count(0), 1);
  EXPECT_EQ(dist.local_count(1), 1);
  for (int g = 2; g < 5; ++g) {
    EXPECT_EQ(dist.local_count(g), 0);
    EXPECT_TRUE(dist.owned_from(g, 0).empty());
  }
}

TEST(BlockCyclic, OwnedFromPastTheEndIsEmpty) {
  BlockCyclic1D dist(6, 2);
  EXPECT_TRUE(dist.owned_from(0, 6).empty());
  EXPECT_TRUE(dist.owned_from(1, 99).empty());
}

#ifndef NDEBUG
TEST(BlockCyclic, NegativeBlockColumnIsRejectedInDebug) {
  BlockCyclic1D dist(6, 2);
  EXPECT_THROW((void)dist.owner(-1), FtlaError);
  EXPECT_THROW((void)dist.local_index(-3), FtlaError);
}
#endif

TEST(Pcie, CtorRejectsNonFiniteOrNonPositiveParameters) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(PcieLink(-1.0e-6, 1.0e9), FtlaError);
  EXPECT_THROW(PcieLink(nan, 1.0e9), FtlaError);
  EXPECT_THROW(PcieLink(inf, 1.0e9), FtlaError);
  EXPECT_THROW(PcieLink(5e-6, 0.0), FtlaError);
  EXPECT_THROW(PcieLink(5e-6, -2.0), FtlaError);
  EXPECT_THROW(PcieLink(5e-6, nan), FtlaError);
  EXPECT_THROW(PcieLink(5e-6, inf), FtlaError);
  EXPECT_NO_THROW(PcieLink(0.0, 1.0));  // zero latency is a legal model
}

TEST(OwnershipMap, StaticModeDelegatesToBlockCyclic) {
  BlockCyclic1D dist(10, 3);
  OwnershipMap map(dist);
  EXPECT_FALSE(map.dynamic());
  for (index_t bc = 0; bc < 10; ++bc) {
    EXPECT_EQ(map.owner(bc), dist.owner(bc));
    EXPECT_EQ(map.slot(bc), dist.local_index(bc));
  }
  for (int g = 0; g < 3; ++g) {
    EXPECT_EQ(map.capacity(g), dist.local_count(g));
    EXPECT_EQ(map.owned_from(g, 4), dist.owned_from(g, 4));
    EXPECT_EQ(map.owned_count(g),
              static_cast<index_t>(dist.owned_from(g, 0).size()));
  }
  EXPECT_THROW(map.set_owner(0, 1), FtlaError);
}

TEST(OwnershipMap, DynamicModeStartsBlockCyclicWithGlobalSlots) {
  OwnershipMap map(BlockCyclic1D(7, 2), /*dynamic=*/true);
  EXPECT_TRUE(map.dynamic());
  for (index_t bc = 0; bc < 7; ++bc) {
    EXPECT_EQ(map.owner(bc), static_cast<int>(bc % 2));
    EXPECT_EQ(map.slot(bc), bc);  // full-capacity shards: slot == global
  }
  EXPECT_EQ(map.capacity(0), 7);
  EXPECT_EQ(map.capacity(1), 7);
}

TEST(OwnershipMap, SetOwnerRehomesAndUpdatesScans) {
  OwnershipMap map(BlockCyclic1D(6, 2), /*dynamic=*/true);
  map.set_owner(4, 1);  // 4 was gpu0's
  EXPECT_EQ(map.owner(4), 1);
  EXPECT_EQ(map.slot(4), 4);  // address is stable across the move
  const auto g0 = map.owned_from(0, 0);
  const auto g1 = map.owned_from(1, 0);
  EXPECT_EQ(g0, (std::vector<index_t>{0, 2}));
  EXPECT_EQ(g1, (std::vector<index_t>{1, 3, 4, 5}));
  EXPECT_EQ(map.owned_count(0, 3), 0);
  EXPECT_EQ(map.owned_count(1, 3), 3);
  EXPECT_THROW(map.set_owner(-1, 0), FtlaError);
  EXPECT_THROW(map.set_owner(6, 0), FtlaError);
  EXPECT_THROW(map.set_owner(2, 9), FtlaError);
}

TEST(OwnershipMap, SingleDeviceDynamicHasNowhereToMigrate) {
  OwnershipMap map(BlockCyclic1D(4, 1), /*dynamic=*/true);
  for (index_t bc = 0; bc < 4; ++bc) EXPECT_EQ(map.owner(bc), 0);
  map.set_owner(2, 0);  // self-move is legal, a no-op
  EXPECT_EQ(map.owned_count(0), 4);
}

TEST(LoadBalancer, CtorValidatesAndSeedsPriorRate) {
  LoadBalancerConfig cfg;
  cfg.prior_rate = 4.0;
  LoadBalancer lb(3, cfg);
  EXPECT_EQ(lb.ndev(), 3);
  for (int g = 0; g < 3; ++g) EXPECT_DOUBLE_EQ(lb.rate(g), 4.0);
  EXPECT_THROW(LoadBalancer(0), FtlaError);
  LoadBalancerConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(LoadBalancer(2, bad), FtlaError);
  bad.alpha = 1.5;
  EXPECT_THROW(LoadBalancer(2, bad), FtlaError);
  bad.alpha = 0.5;
  bad.prior_rate = 0.0;
  EXPECT_THROW(LoadBalancer(2, bad), FtlaError);
}

TEST(LoadBalancer, FirstSampleReplacesPriorThenEwmaSmooths) {
  LoadBalancerConfig cfg;
  cfg.alpha = 0.5;
  cfg.prior_rate = 100.0;  // deliberately far off
  LoadBalancer lb(2, cfg);
  lb.record(0, 10.0, 1.0);  // 10 units/s
  EXPECT_DOUBLE_EQ(lb.rate(0), 10.0);  // prior discarded, not blended
  lb.record(0, 20.0, 1.0);  // 20 units/s sample
  EXPECT_DOUBLE_EQ(lb.rate(0), 0.5 * 20.0 + 0.5 * 10.0);
  lb.record(0, 0.0, 1.0);  // non-positive work: ignored
  lb.record(0, 10.0, 0.0);  // non-positive time: ignored
  EXPECT_DOUBLE_EQ(lb.rate(0), 15.0);
  EXPECT_DOUBLE_EQ(lb.rate(1), 100.0);  // untouched device keeps the prior
}

TEST(LoadBalancer, RebalanceMovesWorkTowardTheFasterDevice) {
  LoadBalancerConfig cfg;
  cfg.max_moves_per_step = 8;
  cfg.min_rel_gain = 0.02;
  LoadBalancer lb(2, cfg);
  lb.record(0, 10.0, 1.0);  // 10 units/s
  lb.record(1, 10.0, 2.0);  // 5 units/s — half as fast
  OwnershipMap map(BlockCyclic1D(8, 2), /*dynamic=*/true);
  std::vector<double> weight(8, 1.0);
  const auto plan = lb.rebalance(map, 0, weight);
  ASSERT_FALSE(plan.empty());
  for (const auto& m : plan) {
    EXPECT_EQ(m.from, 1);  // only the slow device sheds work
    EXPECT_EQ(m.to, 0);
  }
  // 8 unit-weight columns, rates 2:1 → optimum ~5.33/2.67 split. One move
  // (5 on fast, 3 on slow) reaches makespan 0.6 vs initial 0.8.
  EXPECT_EQ(plan.size(), 1u);
}

TEST(LoadBalancer, RebalanceIsDeterministic) {
  LoadBalancerConfig cfg;
  cfg.max_moves_per_step = 4;
  const auto run = [&] {
    LoadBalancer lb(3, cfg);
    lb.record(0, 12.0, 1.0);
    lb.record(1, 6.0, 1.0);
    lb.record(2, 3.0, 1.0);
    OwnershipMap map(BlockCyclic1D(12, 3), /*dynamic=*/true);
    std::vector<double> weight(12);
    for (index_t bc = 0; bc < 12; ++bc) {
      weight[static_cast<std::size_t>(bc)] = static_cast<double>(12 - bc);
    }
    return lb.rebalance(map, 2, weight);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bc, b[i].bc);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
}

TEST(LoadBalancer, HysteresisDiscardsMarginalPlans) {
  LoadBalancerConfig cfg;
  cfg.min_rel_gain = 0.9;  // demand a 90% makespan cut — unattainable
  LoadBalancer lb(2, cfg);
  lb.record(0, 10.0, 1.0);
  lb.record(1, 10.0, 2.0);
  OwnershipMap map(BlockCyclic1D(8, 2), /*dynamic=*/true);
  std::vector<double> weight(8, 1.0);
  EXPECT_TRUE(lb.rebalance(map, 0, weight).empty());
}

TEST(LoadBalancer, BalancedFleetNeedsNoPlan) {
  LoadBalancer lb(2);
  lb.record(0, 10.0, 1.0);
  lb.record(1, 10.0, 1.0);
  OwnershipMap map(BlockCyclic1D(8, 2), /*dynamic=*/true);
  std::vector<double> weight(8, 1.0);
  EXPECT_TRUE(lb.rebalance(map, 0, weight).empty());
}

}  // namespace
}  // namespace ftla::sim

// Tests for the heterogeneous-system simulator: device arenas, streams,
// PCIe transfers with fault hooks and cost model, block-cyclic layout.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "matrix/compare.hpp"
#include "matrix/generate.hpp"
#include "sim/distribution.hpp"
#include "sim/system.hpp"

namespace ftla::sim {
namespace {

TEST(Device, ArenaAllocationsPersistAndCount) {
  Device d(1, DeviceKind::Gpu, "gpu0");
  MatD& a = d.alloc(4, 4, 1.0);
  MatD& b = d.alloc(8, 2);
  EXPECT_EQ(d.num_allocations(), 2u);
  EXPECT_EQ(d.bytes_allocated(), (16u + 16u) * sizeof(double));
  a(0, 0) = 7.0;
  EXPECT_EQ(a(0, 0), 7.0);
  EXPECT_EQ(b(0, 0), 0.0);
  d.free_all();
  EXPECT_EQ(d.num_allocations(), 0u);
  EXPECT_EQ(d.bytes_allocated(), 0u);
}

TEST(Stream, TasksRunInOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) s.enqueue([&order, i] { order.push_back(i); });
  s.synchronize();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeRethrowsTaskException) {
  Stream s;
  s.enqueue([] { throw FtlaError("stream task failed"); });
  EXPECT_THROW(s.synchronize(), FtlaError);
  // Stream stays usable afterwards.
  std::atomic<bool> ran{false};
  s.run([&] { ran = true; });
  EXPECT_TRUE(ran.load());
}

TEST(Stream, RunsOnDedicatedThread) {
  Stream s;
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  s.run([&] { worker = std::this_thread::get_id(); });
  EXPECT_NE(worker, caller);
}

TEST(Pcie, TransferCopiesBytes) {
  PcieLink link;
  MatD src = random_general(6, 4, 1);
  MatD dst(6, 4, 0.0);
  link.transfer(src.const_view(), dst.view(), 0, 1);
  EXPECT_TRUE(approx_equal(src.const_view(), dst.const_view(), 0.0));
}

TEST(Pcie, StatsAccumulate) {
  PcieLink link(1e-6, 1e9);
  MatD src(10, 10, 1.0);
  MatD dst(10, 10);
  link.transfer(src.const_view(), dst.view(), 0, 1);
  link.transfer(src.const_view(), dst.view(), 1, 2);
  EXPECT_EQ(link.stats().transfers, 2u);
  EXPECT_EQ(link.stats().bytes, 2u * 100u * sizeof(double));
  const double expect = 2.0 * (1e-6 + 800.0 / 1e9);
  EXPECT_NEAR(link.stats().modeled_seconds, expect, 1e-12);
  link.reset_stats();
  EXPECT_EQ(link.stats().transfers, 0u);
}

TEST(Pcie, FaultHookSeesReceiverOnly) {
  PcieLink link;
  MatD src(3, 3, 1.0);
  MatD dst(3, 3, 0.0);
  link.set_fault_hook([](ViewD received, const TransferInfo& info) {
    EXPECT_EQ(info.from, 0);
    EXPECT_EQ(info.to, 2);
    received(1, 1) = -99.0;  // corrupt in flight
  });
  link.transfer(src.const_view(), dst.view(), 0, 2);
  EXPECT_EQ(dst(1, 1), -99.0);
  EXPECT_EQ(src(1, 1), 1.0);  // sender unharmed
  link.clear_fault_hook();
  link.transfer(src.const_view(), dst.view(), 0, 2);
  EXPECT_EQ(dst(1, 1), 1.0);
}

TEST(Pcie, ShapeMismatchThrows) {
  PcieLink link;
  MatD src(2, 2);
  MatD dst(3, 3);
  EXPECT_THROW(link.transfer(src.const_view(), dst.view(), 0, 1), FtlaError);
}

TEST(System, TopologyAndIds) {
  HeterogeneousSystem sys(4);
  EXPECT_EQ(sys.ngpu(), 4);
  EXPECT_EQ(sys.cpu().id(), 0);
  EXPECT_EQ(sys.gpu(0).id(), 1);
  EXPECT_EQ(sys.gpu(3).id(), 4);
  EXPECT_EQ(sys.gpu(2).kind(), DeviceKind::Gpu);
}

TEST(System, H2DandD2HandD2D) {
  HeterogeneousSystem sys(2);
  MatD& host = sys.cpu().alloc(4, 4);
  MatD& dev0 = sys.gpu(0).alloc(4, 4);
  MatD& dev1 = sys.gpu(1).alloc(4, 4);
  MatD data = random_general(4, 4, 5);
  copy_view(data.const_view(), host.view());

  sys.h2d(host.const_view(), dev0.view(), 0);
  sys.d2d(dev0.const_view(), 0, dev1.view(), 1);
  MatD& back = sys.cpu().alloc(4, 4);
  sys.d2h(dev1.const_view(), back.view(), 1);
  EXPECT_TRUE(approx_equal(data.const_view(), back.const_view(), 0.0));
  EXPECT_EQ(sys.link().stats().transfers, 3u);
}

TEST(System, ParallelOverGpusRunsAll) {
  HeterogeneousSystem sys(8);
  std::vector<std::atomic<int>> hits(8);
  sys.parallel_over_gpus([&](int g) { hits[static_cast<std::size_t>(g)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(System, ParallelOverGpusPropagatesException) {
  HeterogeneousSystem sys(3);
  EXPECT_THROW(sys.parallel_over_gpus([&](int g) {
    if (g == 1) throw FtlaError("gpu1 failed");
  }),
               FtlaError);
  // System remains usable.
  std::atomic<int> count{0};
  sys.parallel_over_gpus([&](int) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(System, GpuBytesAllocated) {
  HeterogeneousSystem sys(2);
  sys.gpu(0).alloc(10, 10);
  sys.gpu(1).alloc(5, 5);
  EXPECT_EQ(sys.gpu_bytes_allocated(), (100u + 25u) * sizeof(double));
}

TEST(BlockCyclic, OwnerAndLocalIndexRoundTrip) {
  BlockCyclic1D dist(13, 4);
  for (index_t bc = 0; bc < 13; ++bc) {
    const int g = dist.owner(bc);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 4);
    EXPECT_EQ(dist.global_index(g, dist.local_index(bc)), bc);
  }
}

TEST(BlockCyclic, LocalCountsSumToTotal) {
  for (int ngpu : {1, 2, 3, 8}) {
    BlockCyclic1D dist(17, ngpu);
    index_t total = 0;
    for (int g = 0; g < ngpu; ++g) total += dist.local_count(g);
    EXPECT_EQ(total, 17);
  }
}

TEST(BlockCyclic, SingleGpuOwnsEverything) {
  BlockCyclic1D dist(9, 1);
  for (index_t bc = 0; bc < 9; ++bc) {
    EXPECT_EQ(dist.owner(bc), 0);
    EXPECT_EQ(dist.local_index(bc), bc);
  }
}

TEST(BlockCyclic, OwnedFromFiltersAndSorts) {
  BlockCyclic1D dist(10, 3);
  const auto owned = dist.owned_from(1, 4);  // gpu1 owns 1, 4, 7 → from 4: {4, 7}
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0], 4);
  EXPECT_EQ(owned[1], 7);
}

}  // namespace
}  // namespace ftla::sim

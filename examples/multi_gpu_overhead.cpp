// Example: error-free fault-tolerance overhead across simulated GPU
// counts — a hands-on miniature of the paper's Figs 13-15 weak-scaling
// evaluation, with the per-phase time breakdown the figures aggregate.
//
//   ./multi_gpu_overhead [decomp: chol|lu|qr] [base_n] [nb]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/baseline.hpp"
#include "core/campaign.hpp"
#include "matrix/generate.hpp"

using namespace ftla;
using namespace ftla::core;

namespace {

MatD make_input(Decomp decomp, index_t n) {
  switch (decomp) {
    case Decomp::Cholesky: return random_spd(n, 1);
    case Decomp::Lu: return random_diag_dominant(n, 2);
    case Decomp::Qr: return random_general(n, n, 3);
  }
  return {};
}

FtOutput run(Decomp decomp, ConstViewD a, const FtOptions& opts) {
  switch (decomp) {
    case Decomp::Cholesky: return ft_cholesky(a, opts);
    case Decomp::Lu: return ft_lu(a, opts);
    case Decomp::Qr: return ft_qr(a, opts);
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Decomp decomp = Decomp::Lu;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "chol")) decomp = Decomp::Cholesky;
    if (!std::strcmp(argv[1], "qr")) decomp = Decomp::Qr;
  }
  const index_t base_n = argc > 2 ? std::atol(argv[2]) : 384;
  const index_t nb = argc > 3 ? std::atol(argv[3]) : 64;

  std::printf("%s: FT overhead across simulated GPU counts (weak-scaled from n=%ld)\n",
              to_string(decomp), static_cast<long>(base_n));
  std::printf("%5s %7s %10s %10s %9s | %9s %9s %9s\n", "ngpu", "n", "base(s)", "ft(s)",
              "overhead", "encode", "verify", "maintain");

  for (int g : {1, 2, 4}) {
    const double scale = std::sqrt(static_cast<double>(g));
    const index_t n =
        static_cast<index_t>(static_cast<double>(base_n) * scale / nb + 0.5) * nb;
    const MatD a = make_input(decomp, n);

    FtOptions base;
    base.nb = nb;
    base.ngpu = g;
    base.checksum = ChecksumKind::None;
    (void)run(decomp, a.const_view(), base);  // warm up
    const auto plain = run(decomp, a.const_view(), base);

    FtOptions ft = base;
    ft.checksum = ChecksumKind::Full;
    ft.scheme = SchemeKind::NewScheme;
    const auto protected_run = run(decomp, a.const_view(), ft);

    const double tb = plain.stats.total_seconds;
    const double tf = protected_run.stats.total_seconds;
    std::printf("%5d %7ld %10.3f %10.3f %8.1f%% | %8.1f%% %8.1f%% %8.1f%%\n", g,
                static_cast<long>(n), tb, tf, 100.0 * (tf - tb) / tb,
                100.0 * protected_run.stats.encode_seconds / tb,
                100.0 * protected_run.stats.verify_seconds / tb,
                100.0 * protected_run.stats.maintain_seconds / tb);
  }
  std::printf("\nOverhead stays roughly flat as GPUs (and the matrix) grow — the\n"
              "weak-scaling behaviour of Figs 13-15.\n");
  return 0;
}

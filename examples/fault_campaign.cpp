// Example: run a randomized fault-injection campaign against a chosen
// decomposition/protection configuration and print the outcome
// statistics — a miniature version of the paper's §X.A evaluation.
//
//   ./fault_campaign [decomp: chol|lu|qr] [runs] [scheme: prior|post|new]
//                    [checksum: none|single|full]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "core/campaign.hpp"

using namespace ftla;
using namespace ftla::core;

namespace {

/// Draws a fault from the grid of combinations the fault model defines
/// (PCIe faults strike transfers; on-chip faults strike read-only
/// reference operands; PD's panel is offered as its reference part).
fault::FaultSpec random_spec(Xoshiro256& rng, index_t b, core::Decomp decomp) {
  fault::FaultSpec spec;
  spec.type = static_cast<fault::FaultType>(rng.bounded(4));
  spec.site.iteration = rng.index(b - 1);
  const index_t k = spec.site.iteration;
  spec.timing = rng.bounded(2) ? fault::Timing::BetweenOps : fault::Timing::DuringOp;
  spec.seed = rng.next_u64() | 1;

  if (spec.type == fault::FaultType::Pcie) {
    spec.site.op = rng.bounded(2) ? fault::OpKind::PD : fault::OpKind::BroadcastH2D;
    spec.target_br = k;
    spec.target_bc = k;
    return spec;
  }

  const int op_pick = static_cast<int>(rng.bounded(3));
  spec.site.op = op_pick == 0   ? fault::OpKind::PD
                 : op_pick == 1 ? fault::OpKind::PU
                                : fault::OpKind::TMU;
  // QR folds PU into PD/CTF; Cholesky's PU hook covers the whole panel.
  if (decomp == core::Decomp::Qr && spec.site.op == fault::OpKind::PU)
    spec.site.op = fault::OpKind::TMU;

  switch (spec.site.op) {
    case fault::OpKind::PD:
      spec.part = fault::Part::Reference;
      if (spec.type == fault::FaultType::MemoryOnChip)
        spec.type = fault::FaultType::Computation;
      spec.target_br = decomp == core::Decomp::Cholesky ? k : k + rng.index(b - k);
      spec.target_bc = k;
      break;
    case fault::OpKind::PU:
      if (spec.type == fault::FaultType::MemoryOnChip) {
        spec.part = fault::Part::Reference;
        spec.target_br = k;
        spec.target_bc = k;
        spec.row = 9;  // strictly-lower L11: the consumed region
        spec.col = 2;
      } else {
        spec.part = fault::Part::Update;
        if (decomp == core::Decomp::Cholesky) {
          spec.target_br = k + 1;
          spec.target_bc = k;
        } else {
          spec.target_br = k;
          spec.target_bc = k + 1 + rng.index(b - k - 1);
        }
      }
      break;
    default: {  // TMU
      const bool ref = rng.bounded(2) != 0 ||
                       spec.type == fault::FaultType::MemoryOnChip;
      spec.part = ref ? fault::Part::Reference : fault::Part::Update;
      if (ref) {
        spec.target_br = k + 1 + rng.index(b - k - 1);
        spec.target_bc = k;
      } else {
        const index_t j = k + 1 + rng.index(b - k - 1);
        spec.target_bc = j;
        if (decomp == core::Decomp::Qr) {
          spec.target_br = k;
        } else if (decomp == core::Decomp::Cholesky) {
          spec.target_br = j + rng.index(b - j);
        } else {
          spec.target_br = k + 1 + rng.index(b - k - 1);
        }
      }
      break;
    }
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig cfg;
  cfg.n = 192;
  cfg.opts.nb = 32;
  cfg.opts.ngpu = 2;
  cfg.opts.checksum = ChecksumKind::Full;
  cfg.opts.scheme = SchemeKind::NewScheme;
  int runs = 40;

  if (argc > 1) {
    if (!std::strcmp(argv[1], "chol")) cfg.decomp = Decomp::Cholesky;
    if (!std::strcmp(argv[1], "lu")) cfg.decomp = Decomp::Lu;
    if (!std::strcmp(argv[1], "qr")) cfg.decomp = Decomp::Qr;
  }
  if (argc > 2) runs = std::atoi(argv[2]);
  if (argc > 3) {
    if (!std::strcmp(argv[3], "prior")) cfg.opts.scheme = SchemeKind::PriorOp;
    if (!std::strcmp(argv[3], "post")) cfg.opts.scheme = SchemeKind::PostOp;
    if (!std::strcmp(argv[3], "new")) cfg.opts.scheme = SchemeKind::NewScheme;
  }
  if (argc > 4) {
    if (!std::strcmp(argv[4], "none")) cfg.opts.checksum = ChecksumKind::None;
    if (!std::strcmp(argv[4], "single")) cfg.opts.checksum = ChecksumKind::SingleSide;
    if (!std::strcmp(argv[4], "full")) cfg.opts.checksum = ChecksumKind::Full;
  }

  std::printf("campaign: %s, n=%ld, %s checksum, %s scheme, %d runs\n",
              to_string(cfg.decomp), static_cast<long>(cfg.n),
              to_string(cfg.opts.checksum), to_string(cfg.opts.scheme), runs);

  Campaign campaign(cfg);
  Xoshiro256 rng(4242);
  const index_t b = cfg.n / cfg.opts.nb;

  std::map<std::string, int> tally;
  for (int r = 0; r < runs; ++r) {
    const auto spec = random_spec(rng, b, cfg.decomp);
    const auto result = campaign.run(spec);
    ++tally[to_string(result.outcome)];
    std::printf("  run %2d: %-22s %s\n", r, to_string(result.outcome),
                fault::describe(spec).c_str());
  }

  std::printf("\nsummary over %d runs:\n", runs);
  for (const auto& [name, count] : tally) {
    std::printf("  %-24s %3d (%.0f%%)\n", name.c_str(), count,
                100.0 * count / runs);
  }
  return 0;
}

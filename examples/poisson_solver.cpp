// Domain example: implicit heat/Poisson step on a 2D grid. Builds the
// classic 5-point finite-difference operator (shifted to be strictly
// diagonally dominant, as an implicit Euler step is), factors it with
// fault-tolerant LU while a soft error is injected mid-run, and shows
// that the solution is indistinguishable from the fault-free one.
//
//   ./poisson_solver [grid] [nb]     (matrix size n = grid², rounded to nb)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.hpp"
#include "core/ft_driver.hpp"
#include "fault/injector.hpp"
#include "matrix/compare.hpp"
#include "matrix/matrix.hpp"

using namespace ftla;

namespace {

/// 5-point Laplacian plus a mass term (implicit Euler: I + τ·(-Δ)),
/// padded with identity rows up to a multiple of nb.
MatD build_poisson(index_t grid, index_t n_padded, double tau) {
  MatD a(n_padded, n_padded, 0.0);
  for (index_t i = 0; i < n_padded; ++i) a(i, i) = 1.0;
  auto idx = [grid](index_t r, index_t c) { return r * grid + c; };
  for (index_t r = 0; r < grid; ++r) {
    for (index_t c = 0; c < grid; ++c) {
      const index_t i = idx(r, c);
      a(i, i) = 1.0 + 4.0 * tau;
      if (r > 0) a(i, idx(r - 1, c)) = -tau;
      if (r + 1 < grid) a(i, idx(r + 1, c)) = -tau;
      if (c > 0) a(i, idx(r, c - 1)) = -tau;
      if (c + 1 < grid) a(i, idx(r, c + 1)) = -tau;
    }
  }
  return a;
}

std::vector<double> solve_lu(const MatD& lu, std::vector<double> rhs) {
  blas::trsv(blas::Uplo::Lower, blas::Trans::NoTrans, blas::Diag::Unit, lu.const_view(),
             rhs.data(), 1);
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
             lu.const_view(), rhs.data(), 1);
  return rhs;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t grid = argc > 1 ? std::atol(argv[1]) : 20;
  const index_t nb = argc > 2 ? std::atol(argv[2]) : 32;
  const index_t n = ((grid * grid + nb - 1) / nb) * nb;

  std::printf("implicit 2D heat step on a %ldx%ld grid (n = %ld, NB = %ld)\n",
              static_cast<long>(grid), static_cast<long>(grid), static_cast<long>(n),
              static_cast<long>(nb));

  const MatD a = build_poisson(grid, n, /*tau=*/0.25);
  // Heat source in the middle of the domain.
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  rhs[static_cast<std::size_t>((grid / 2) * grid + grid / 2)] = 1.0;

  core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 2;
  opts.checksum = core::ChecksumKind::Full;
  opts.scheme = core::SchemeKind::NewScheme;

  // Fault-free factorization for reference.
  const auto clean = core::ft_lu(a.const_view(), opts);
  if (!clean.ok()) {
    std::printf("clean run failed: %s\n", clean.stats.summary().c_str());
    return 1;
  }

  // Now the same factorization with a DRAM soft error striking the
  // trailing matrix during the second iteration's TMU.
  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.type = fault::FaultType::MemoryDram;
  spec.site = {1, fault::OpKind::TMU};
  spec.part = fault::Part::Reference;
  spec.timing = fault::Timing::DuringOp;
  spec.target_br = 2;
  spec.target_bc = 1;
  spec.seed = 99;
  injector.schedule(spec);

  const auto faulty = core::ft_lu(a.const_view(), opts, &injector);
  if (!faulty.ok()) {
    std::printf("faulty run did not recover: %s\n", faulty.stats.summary().c_str());
    return 1;
  }
  if (!injector.all_fired()) {
    std::printf("warning: fault schedule did not trigger\n");
  } else {
    const auto rec = injector.records().front();
    std::printf("injected %s at A(%ld,%ld): %.6f -> %.6f\n",
                fault::describe(rec.spec).c_str(), static_cast<long>(rec.global.row),
                static_cast<long>(rec.global.col), rec.original, rec.corrupted);
  }

  const auto u_clean = solve_lu(clean.factors, rhs);
  const auto u_faulty = solve_lu(faulty.factors, rhs);
  double diff = 0.0;
  for (std::size_t i = 0; i < u_clean.size(); ++i)
    diff = std::max(diff, std::abs(u_clean[i] - u_faulty[i]));

  std::printf("factor difference (max):   %.3e\n",
              max_abs_diff(clean.factors.const_view(), faulty.factors.const_view()));
  std::printf("solution difference (max): %.3e\n", diff);
  std::printf("recovery: %s\n", faulty.stats.summary().c_str());
  std::printf(diff < 1e-8 ? "OK: the soft error was absorbed transparently\n"
                          : "FAIL: solutions diverged\n");
  return diff < 1e-8 ? 0 : 1;
}

// Quickstart: factor an SPD system with the fault-tolerant Cholesky and
// solve A·x = b, with full-checksum protection and the paper's new
// checking scheme enabled.
//
//   ./quickstart [n] [nb] [ngpu]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.hpp"
#include "matrix/generate.hpp"
#include "matrix/norms.hpp"
#include "solve/solve.hpp"

using namespace ftla;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atol(argv[1]) : 512;
  const index_t nb = argc > 2 ? std::atol(argv[2]) : 64;
  const int ngpu = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("FT-LA quickstart: Cholesky solve, n=%ld, NB=%ld, %d simulated GPU(s)\n",
              static_cast<long>(n), static_cast<long>(nb), ngpu);

  // 1. Build a random SPD system A·x = b with known solution x* = 1.
  const MatD a = random_spd(n, /*seed=*/2024);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::NoTrans, 1.0, a.const_view(), x.data(), 1, 0.0, b.data(), 1);

  // 2. One call: fault-tolerant Cholesky factorization on the simulated
  //    heterogeneous system (full checksums + the paper's new checking
  //    scheme are the library defaults) and a protected solve.
  core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = ngpu;

  MatD rhs(n, 1);
  for (index_t i = 0; i < n; ++i) rhs(i, 0) = b[static_cast<std::size_t>(i)];
  const auto result = solve::solve_spd(a.const_view(), rhs.const_view(), opts);
  if (!result.ok) {
    std::printf("solve failed: %s\n", result.stats.summary().c_str());
    return 1;
  }

  double err = 0.0;
  for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(result.x(i, 0) - 1.0));

  std::printf("solve error ‖x-x*‖∞ = %.3e, residual = %.3e\n", err, result.residual);
  std::printf("FT stats: %s\n", result.stats.summary().c_str());
  std::printf("PCIe (modeled): %.3f ms across the run\n",
              result.stats.comm_modeled_seconds * 1e3);
  return err < 1e-8 ? 0 : 1;
}

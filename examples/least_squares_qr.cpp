// Domain example: polynomial regression via the fault-tolerant QR.
// Builds a (square, padded) Vandermonde-style normal system, factors it
// with FT-QR under an injected PCIe fault, and recovers the fitted
// coefficients exactly.
//
//   ./least_squares_qr [n] [nb]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.hpp"
#include "core/ft_driver.hpp"
#include "fault/injector.hpp"
#include "lapack/lapack.hpp"
#include "matrix/matrix.hpp"

using namespace ftla;

namespace {

/// Least-squares-style square system: well-conditioned random rows with
/// a smooth signal; solves min ‖Ax - b‖ via QR (square A ⇒ exact solve).
MatD build_design_matrix(index_t n, index_t degree_cap) {
  MatD a(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    const double t = -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(n - 1);
    double p = 1.0;
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = p;
      p *= (j < degree_cap) ? t : 0.37;  // taper high "degrees" to keep conditioning
      if (j >= degree_cap) p = (i + 1 + j) % 7 == 0 ? 1.0 : p;
    }
    a(i, i) += 3.0;  // keep the system comfortably full rank
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atol(argv[1]) : 256;
  const index_t nb = argc > 2 ? std::atol(argv[2]) : 32;

  std::printf("FT-QR regression example: n=%ld, NB=%ld\n", static_cast<long>(n),
              static_cast<long>(nb));

  const MatD a = build_design_matrix(n, 6);
  // Target: b = A·x* with x* decaying coefficients.
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    x_true[static_cast<std::size_t>(j)] = std::exp(-0.1 * static_cast<double>(j));
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::NoTrans, 1.0, a.const_view(), x_true.data(), 1, 0.0, b.data(),
             1);

  core::FtOptions opts;
  opts.nb = nb;
  opts.ngpu = 2;
  opts.checksum = core::ChecksumKind::Full;
  opts.scheme = core::SchemeKind::NewScheme;

  // A PCIe fault strikes the panel broadcast of iteration 1 — the class
  // of error no previous ABFT scheme protected (§VII.C).
  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.type = fault::FaultType::Pcie;
  spec.site = {1, fault::OpKind::BroadcastH2D};
  spec.target_br = 1;
  spec.target_bc = 1;
  spec.target_gpu = 0;
  spec.seed = 7;
  injector.schedule(spec);

  const auto out = core::ft_qr(a.const_view(), opts, &injector);
  if (!out.ok()) {
    std::printf("factorization failed: %s\n", out.stats.summary().c_str());
    return 1;
  }
  std::printf("PCIe faults corrected at receivers: %llu\n",
              static_cast<unsigned long long>(out.stats.comm_errors_corrected));

  // Solve R·x = Qᵀ·b.
  const MatD q = lapack::orgqr(out.factors.const_view(), out.tau, nb);
  std::vector<double> qtb(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::Trans, 1.0, q.const_view(), b.data(), 1, 0.0, qtb.data(), 1);
  blas::trsv(blas::Uplo::Upper, blas::Trans::NoTrans, blas::Diag::NonUnit,
             out.factors.const_view(), qtb.data(), 1);

  double err = 0.0;
  for (index_t j = 0; j < n; ++j)
    err = std::max(err, std::abs(qtb[static_cast<std::size_t>(j)] -
                                 x_true[static_cast<std::size_t>(j)]));
  std::printf("coefficient error ‖x-x*‖∞ = %.3e\n", err);
  std::printf("FT stats: %s\n", out.stats.summary().c_str());
  std::printf(err < 1e-7 ? "OK: fit recovered despite the communication fault\n"
                         : "FAIL\n");
  return err < 1e-7 ? 0 : 1;
}

// Serving-runtime walkthrough: a two-fleet pool taking a small stream
// of factorization jobs — a clean interactive Cholesky, an LU hit by a
// correctable computation fault, and a "harsh" LU whose first attempt
// ends DetectedUnrecoverable and is transparently retried.
//
// Build & run:
//   cmake --build build --target serve_demo && ./build/examples/serve_demo

#include <cstdio>

#include "serve/runtime.hpp"

using namespace ftla;
using namespace ftla::serve;

namespace {

fault::FaultSpec computation_fault(fault::OpKind op, index_t iter, index_t br,
                                   index_t bc) {
  fault::FaultSpec s;
  s.type = fault::FaultType::Computation;
  s.site = fault::OpSite{iter, op};
  s.part = fault::Part::Update;
  s.timing = fault::Timing::DuringOp;
  s.target_br = br;
  s.target_bc = bc;
  s.seed = 12345;
  return s;
}

void report(const char* label, const JobResult& r) {
  std::printf("%-16s state=%-9s outcome=%-22s attempts=%d fleet=%d "
              "wait=%.1fms service=%.1fms\n",
              label, to_string(r.state), core::to_string(r.outcome), r.attempts,
              r.fleet, r.queue_wait_seconds * 1e3, r.service_seconds * 1e3);
}

}  // namespace

int main() {
  ServeConfig config;
  config.fleet_ngpu = {1, 2};  // two pooled system instances
  config.max_retries = 3;
  ServeRuntime runtime(config);

  // 1. A clean high-priority Cholesky, placed on whichever fleet is idle.
  JobSpec interactive;
  interactive.decomp = core::Decomp::Cholesky;
  interactive.n = 96;
  interactive.opts.nb = 16;
  interactive.opts.ngpu = 0;  // any fleet
  interactive.priority = Priority::Interactive;

  // 2. An LU whose panel decomposition is struck by a computation fault
  //    the full-checksum new scheme corrects in place.
  JobSpec faulty = interactive;
  faulty.decomp = core::Decomp::Lu;
  faulty.priority = Priority::Normal;
  faulty.faults.push_back(computation_fault(fault::OpKind::PD, 1, 1, 1));

  // 3. The same fault class at a restart-requiring site, with the local
  //    restart budget zeroed: the first attempt is detected but
  //    unrecoverable, so the runtime re-enqueues it with backoff; the
  //    transient fault does not recur and the retry completes.
  JobSpec harsh = faulty;
  harsh.faults = {computation_fault(fault::OpKind::PD, 2, 2, 2)};
  harsh.opts.max_local_restarts = 0;
  harsh.priority = Priority::Batch;

  const auto a = runtime.submit(interactive);
  const auto b = runtime.submit(faulty);
  const auto c = runtime.submit(harsh);
  if (!a.admitted() || !b.admitted() || !c.admitted()) {
    std::printf("admission refused: %s / %s / %s\n", to_string(a.reject),
                to_string(b.reject), to_string(c.reject));
    return 1;
  }

  report("interactive", runtime.wait(a.id));
  report("faulty", runtime.wait(b.id));
  report("harsh+retry", runtime.wait(c.id));

  runtime.shutdown(/*drain=*/true);
  std::printf("\nmetrics: %s\n", runtime.metrics().to_json(0.0).c_str());
  std::printf("\nreference cache: %zu entries, %llu hits, %llu misses\n",
              runtime.reference_cache().size(),
              static_cast<unsigned long long>(runtime.reference_cache().hits()),
              static_cast<unsigned long long>(runtime.reference_cache().misses()));
  return 0;
}
